// Tests for the replication journal: durability records, watermark
// semantics, torn-tail recovery, checkpointing, and engine crash replay.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "block/mem_disk.h"
#include "codec/codec.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "prins/engine.h"
#include "prins/journal.h"
#include "prins/replica.h"

namespace prins {
namespace {

constexpr std::uint32_t kBs = 1024;

std::string temp_path(const char* tag) {
  static int counter = 0;
  return (std::filesystem::temp_directory_path() /
          ("prins_journal_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(counter++)))
      .string();
}

ReplicationMessage make_message(std::uint64_t sequence) {
  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = ReplicationPolicy::kPrins;
  msg.block_size = kBs;
  msg.lba = sequence % 7;
  msg.sequence = sequence;
  msg.timestamp_us = sequence;
  Rng rng(sequence);
  Bytes payload(64);
  rng.fill(payload);
  msg.payload = payload;
  return msg;
}

struct JournalFile {
  std::string path = temp_path("t");
  ~JournalFile() { std::remove(path.c_str()); }
};

TEST(JournalTest, FreshJournalIsEmpty) {
  JournalFile file;
  auto journal = ReplicationJournal::open(file.path);
  ASSERT_TRUE(journal.is_ok()) << journal.status().to_string();
  EXPECT_EQ((*journal)->pending_count(), 0u);
  EXPECT_EQ((*journal)->acked_sequence(), 0u);
  EXPECT_EQ((*journal)->max_sequence(), 0u);
}

TEST(JournalTest, AppendAckPendingLifecycle) {
  JournalFile file;
  auto journal = ReplicationJournal::open(file.path);
  ASSERT_TRUE(journal.is_ok());
  for (std::uint64_t s = 1; s <= 5; ++s) {
    ASSERT_TRUE((*journal)->append(make_message(s)).is_ok());
  }
  EXPECT_EQ((*journal)->pending_count(), 5u);
  ASSERT_TRUE((*journal)->mark_acked(3).is_ok());
  EXPECT_EQ((*journal)->pending_count(), 2u);
  auto pending = (*journal)->pending();
  ASSERT_TRUE(pending.is_ok());
  ASSERT_EQ(pending->size(), 2u);
  EXPECT_EQ((*pending)[0].sequence, 4u);
  EXPECT_EQ((*pending)[1].sequence, 5u);
  // Stale watermark updates are no-ops.
  ASSERT_TRUE((*journal)->mark_acked(2).is_ok());
  EXPECT_EQ((*journal)->acked_sequence(), 3u);
}

TEST(JournalTest, StateSurvivesReopen) {
  JournalFile file;
  {
    auto journal = ReplicationJournal::open(file.path);
    ASSERT_TRUE(journal.is_ok());
    for (std::uint64_t s = 1; s <= 10; ++s) {
      ASSERT_TRUE((*journal)->append(make_message(s)).is_ok());
    }
    ASSERT_TRUE((*journal)->mark_acked(7).is_ok());
  }
  auto journal = ReplicationJournal::open(file.path);
  ASSERT_TRUE(journal.is_ok());
  EXPECT_EQ((*journal)->acked_sequence(), 7u);
  EXPECT_EQ((*journal)->max_sequence(), 10u);
  auto pending = (*journal)->pending();
  ASSERT_TRUE(pending.is_ok());
  ASSERT_EQ(pending->size(), 3u);
  for (std::size_t i = 0; i < pending->size(); ++i) {
    const auto& msg = (*pending)[i];
    EXPECT_EQ(msg.sequence, 8 + i);
    // Payload integrity survives the file round trip.
    EXPECT_EQ(msg.payload, make_message(msg.sequence).payload);
  }
}

TEST(JournalTest, TornTailIsIgnored) {
  JournalFile file;
  {
    auto journal = ReplicationJournal::open(file.path);
    ASSERT_TRUE(journal.is_ok());
    ASSERT_TRUE((*journal)->append(make_message(1)).is_ok());
    ASSERT_TRUE((*journal)->append(make_message(2)).is_ok());
  }
  // Simulate a crash mid-append: chop bytes off the end.
  {
    std::FILE* f = std::fopen(file.path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_EQ(::truncate(file.path.c_str(), size - 10), 0);
    std::fclose(f);
  }
  auto journal = ReplicationJournal::open(file.path);
  ASSERT_TRUE(journal.is_ok()) << journal.status().to_string();
  // Entry 1 intact; entry 2 torn and dropped.
  EXPECT_EQ((*journal)->pending_count(), 1u);
  auto pending = (*journal)->pending();
  ASSERT_TRUE(pending.is_ok());
  EXPECT_EQ((*pending)[0].sequence, 1u);
}

TEST(JournalTest, TornTailFuzzEveryTruncationOffset) {
  // Exhaustive crash simulation: whatever byte the power failed at while the
  // tail record was being appended, reopen must recover exactly the intact
  // prefix — never a phantom record, never an error.
  JournalFile file;
  std::uintmax_t after_first = 0;
  std::uintmax_t after_second = 0;
  {
    auto journal = ReplicationJournal::open(file.path);
    ASSERT_TRUE(journal.is_ok());
    ASSERT_TRUE((*journal)->append(make_message(1)).is_ok());
    after_first = std::filesystem::file_size(file.path);
    ASSERT_TRUE((*journal)->append(make_message(2)).is_ok());
    after_second = std::filesystem::file_size(file.path);
  }
  ASSERT_LT(after_first, after_second);

  const std::string copy = file.path + ".torn";
  for (std::uintmax_t cut = after_first; cut < after_second; ++cut) {
    std::filesystem::copy_file(
        file.path, copy, std::filesystem::copy_options::overwrite_existing);
    ASSERT_EQ(::truncate(copy.c_str(), static_cast<off_t>(cut)), 0);
    auto reopened = ReplicationJournal::open(copy);
    ASSERT_TRUE(reopened.is_ok())
        << "cut at byte " << cut << ": " << reopened.status().to_string();
    auto pending = (*reopened)->pending();
    ASSERT_TRUE(pending.is_ok()) << "cut at byte " << cut;
    ASSERT_EQ(pending->size(), 1u) << "cut at byte " << cut;
    EXPECT_EQ((*pending)[0].sequence, 1u) << "cut at byte " << cut;
    EXPECT_EQ((*pending)[0].payload, make_message(1).payload)
        << "cut at byte " << cut;
  }
  std::remove(copy.c_str());
}

TEST(JournalTest, TornAckTailFuzzEveryTruncationOffset) {
  // Same sweep over a torn acknowledgement record: the watermark must fall
  // back to its pre-ack value, resurrecting (not losing) pending messages.
  JournalFile file;
  std::uintmax_t after_appends = 0;
  std::uintmax_t after_ack = 0;
  {
    auto journal = ReplicationJournal::open(file.path);
    ASSERT_TRUE(journal.is_ok());
    ASSERT_TRUE((*journal)->append(make_message(1)).is_ok());
    ASSERT_TRUE((*journal)->append(make_message(2)).is_ok());
    after_appends = std::filesystem::file_size(file.path);
    ASSERT_TRUE((*journal)->mark_acked(1).is_ok());
    after_ack = std::filesystem::file_size(file.path);
  }
  ASSERT_LT(after_appends, after_ack);

  const std::string copy = file.path + ".torn";
  for (std::uintmax_t cut = after_appends; cut < after_ack; ++cut) {
    std::filesystem::copy_file(
        file.path, copy, std::filesystem::copy_options::overwrite_existing);
    ASSERT_EQ(::truncate(copy.c_str(), static_cast<off_t>(cut)), 0);
    auto reopened = ReplicationJournal::open(copy);
    ASSERT_TRUE(reopened.is_ok())
        << "cut at byte " << cut << ": " << reopened.status().to_string();
    EXPECT_EQ((*reopened)->acked_sequence(), 0u) << "cut at byte " << cut;
    EXPECT_EQ((*reopened)->pending_count(), 2u) << "cut at byte " << cut;
  }
  std::remove(copy.c_str());
}

TEST(JournalTest, CheckpointShrinksFileAndKeepsPending) {
  JournalFile file;
  auto journal = ReplicationJournal::open(file.path);
  ASSERT_TRUE(journal.is_ok());
  for (std::uint64_t s = 1; s <= 100; ++s) {
    ASSERT_TRUE((*journal)->append(make_message(s)).is_ok());
  }
  ASSERT_TRUE((*journal)->mark_acked(98).is_ok());
  const auto before = std::filesystem::file_size(file.path);
  ASSERT_TRUE((*journal)->checkpoint().is_ok());
  const auto after = std::filesystem::file_size(file.path);
  EXPECT_LT(after, before / 10);
  EXPECT_EQ((*journal)->pending_count(), 2u);

  // Still appendable and reopenable after the rename.
  ASSERT_TRUE((*journal)->append(make_message(101)).is_ok());
  journal->reset();
  auto reopened = ReplicationJournal::open(file.path);
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ((*reopened)->pending_count(), 3u);
  EXPECT_EQ((*reopened)->acked_sequence(), 98u);
}

TEST(JournalTest, EngineCrashReplayConvergesReplica) {
  // Full crash story: engine journals writes whose replica link is dead,
  // "crashes" (destroyed), and a new engine with the same journal replays
  // them to a freshly attached replica.
  JournalFile file;
  auto primary = std::make_shared<MemDisk>(32, kBs);
  Rng rng(1);
  std::vector<Bytes> written(8, Bytes(kBs));

  {
    auto journal_or = ReplicationJournal::open(file.path);
    ASSERT_TRUE(journal_or.is_ok());
    EngineConfig config;
    config.policy = ReplicationPolicy::kPrins;
    config.journal = std::shared_ptr<ReplicationJournal>(std::move(*journal_or));
    auto engine = std::make_unique<PrinsEngine>(primary, config);
    auto [primary_end, replica_end] = make_inproc_pair();
    engine->add_replica(std::move(primary_end));
    replica_end->close();  // replica is down the whole time

    for (int i = 0; i < 8; ++i) {
      rng.fill(written[i]);
      (void)engine->write(i, written[i]);  // lands locally, journals
    }
    // Engine destroyed with everything unacked — the "crash".
  }

  // Restart: same journal, fresh engine, live replica.
  auto journal_or = ReplicationJournal::open(file.path);
  ASSERT_TRUE(journal_or.is_ok());
  auto journal = std::shared_ptr<ReplicationJournal>(std::move(*journal_or));
  EXPECT_EQ(journal->pending_count(), 8u);

  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.journal = journal;
  auto engine = std::make_unique<PrinsEngine>(primary, config);

  auto replica_disk = std::make_shared<MemDisk>(32, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        (void)r->serve(*t);
      });

  ASSERT_TRUE(engine->replay_journal().is_ok());
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_EQ(journal->pending_count(), 0u);

  // Replayed writes applied (parity against the replica's zeroed blocks
  // reproduces the content because the primary's old blocks were zero too).
  Bytes out(kBs);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(replica_disk->read(i, out).is_ok());
    EXPECT_EQ(out, written[i]) << "block " << i;
  }

  // New writes after recovery continue with non-colliding sequences.
  Bytes fresh(kBs, 0x42);
  ASSERT_TRUE(engine->write(20, fresh).is_ok());
  ASSERT_TRUE(engine->drain().is_ok());
  ASSERT_TRUE(replica_disk->read(20, out).is_ok());
  EXPECT_EQ(out, fresh);

  engine.reset();
  server.join();
}

}  // namespace
}  // namespace prins
