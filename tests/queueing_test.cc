// Tests for the queueing models: MVA recursion, M/M/1 formulas, and the
// paper's WAN delay constants.
#include <gtest/gtest.h>

#include <cmath>

#include "net/packet_model.h"
#include "queueing/des.h"
#include "queueing/mm1.h"
#include "queueing/mva.h"
#include "queueing/wan.h"

namespace prins {
namespace {

TEST(WanTest, TransmissionDelayMatchesPaperFormula) {
  // Paper: Dtrans = (Sd + Sd/1.5 * 0.112) / 154.4 for T1, sizes in KB.
  // For an 8 KB payload: 8192 bytes → 6 packets → 8192 + 672 wire bytes.
  const double d = transmission_delay_sec(8192, kT1);
  EXPECT_NEAR(d, (8192.0 + 6 * 112.0) / 154.4e3, 1e-9);
  const double d3 = transmission_delay_sec(8192, kT3);
  EXPECT_NEAR(d3, (8192.0 + 6 * 112.0) / 4473.6e3, 1e-9);
  EXPECT_LT(d3, d);  // T3 is the faster line
}

TEST(WanTest, RouterServiceTimeAddsProcAndProp) {
  const double service = router_service_time_sec(8192, kT1);
  const double expected =
      transmission_delay_sec(8192, kT1) + 6 * 5e-6 + 1e-3;
  EXPECT_NEAR(service, expected, 1e-12);
}

TEST(WanTest, ZeroPayloadStillPaysPropagation) {
  EXPECT_NEAR(router_service_time_sec(0, kT1), kPropagationDelaySec, 1e-12);
}

TEST(WanTest, LineConstantsMatchPaper) {
  EXPECT_NEAR(kT1.bytes_per_second, 154.4e3, 1e-6);
  EXPECT_NEAR(kT3.bytes_per_second, 4473.6e3, 1e-6);
}

// ---- MVA -------------------------------------------------------------------

TEST(MvaTest, SingleCustomerSeesBareServiceTimes) {
  // With N=1 there is no queueing: R = sum of service times.
  const auto r = solve_mva({0.1, 0.2}, 1.0, 1);
  EXPECT_NEAR(r.response_time_sec, 0.3, 1e-12);
  EXPECT_NEAR(r.throughput, 1.0 / 1.3, 1e-12);
}

TEST(MvaTest, ThroughputSaturatesAtBottleneck) {
  // As N grows, X(n) -> 1/S_max (the bottleneck service rate).
  const double bottleneck = 0.05;
  const auto curve = solve_mva_curve({0.01, bottleneck}, 0.5, 400);
  const double x_limit = 1.0 / bottleneck;
  EXPECT_NEAR(curve.back().throughput, x_limit, 0.01 * x_limit);
  // And never exceeds it on the way.
  for (const auto& point : curve) {
    EXPECT_LE(point.throughput, x_limit * (1 + 1e-9));
  }
}

TEST(MvaTest, ResponseTimeGrowsWithPopulation) {
  const auto curve = solve_mva_curve({0.05, 0.05}, 0.1, 100);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].response_time_sec,
              curve[i - 1].response_time_sec - 1e-12);
  }
  // Asymptotically R(n) ≈ n * S_bottleneck - Z.
  const auto& last = curve.back();
  EXPECT_NEAR(last.response_time_sec, 100 * 0.05 - 0.1,
              0.1 * last.response_time_sec);
}

TEST(MvaTest, LittlesLawHoldsAtEveryPopulation) {
  // N = X * (Z + R): the fixed point the recursion maintains exactly.
  const auto curve = solve_mva_curve({0.02, 0.07, 0.01}, 0.3, 50);
  for (const auto& point : curve) {
    EXPECT_NEAR(point.population,
                point.throughput * (0.3 + point.response_time_sec), 1e-9);
    // Queue lengths sum to the customers not thinking.
    double in_system = 0;
    for (double q : point.queue_lengths) in_system += q;
    EXPECT_NEAR(in_system,
                point.throughput * point.response_time_sec, 1e-9);
  }
}

TEST(MvaTest, SmallerServiceTimesGiveSmallerResponse) {
  // The PRINS-vs-traditional comparison in Figure 8 reduced to its core:
  // scaling every service time down scales the whole response curve down.
  const auto slow = solve_mva_curve({0.05, 0.05}, 0.1, 80);
  const auto fast = solve_mva_curve({0.0005, 0.0005}, 0.1, 80);
  for (std::size_t i = 0; i < slow.size(); ++i) {
    EXPECT_LT(fast[i].response_time_sec, slow[i].response_time_sec);
  }
  // The fast system stays flat where the slow one has blown up:
  // 80 customers saturate the 0.05 s bottleneck (R ≈ N*S - Z ≈ 3.9 s)
  // while the 0.0005 s system still serves everyone near its raw time.
  EXPECT_LT(fast.back().response_time_sec, 0.01);
  EXPECT_GT(slow.back().response_time_sec, 1.0);
}

// ---- M/M/1 -----------------------------------------------------------------

TEST(Mm1Test, FormulasExact) {
  // λ=5/s, S=0.1s → µ=10/s, ρ=0.5, W=1/(10-5)=0.2, Wq=0.5/5=0.1.
  const auto r = solve_mm1(5.0, 0.1);
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.utilization, 0.5, 1e-12);
  EXPECT_NEAR(r.response_time_sec, 0.2, 1e-12);
  EXPECT_NEAR(r.queueing_time_sec, 0.1, 1e-12);
  EXPECT_NEAR(r.response_time_sec, r.queueing_time_sec + 0.1, 1e-12);
}

TEST(Mm1Test, SaturationIsInfinite) {
  const auto at = solve_mm1(10.0, 0.1);
  EXPECT_TRUE(at.saturated);
  EXPECT_TRUE(std::isinf(at.queueing_time_sec));
  const auto beyond = solve_mm1(20.0, 0.1);
  EXPECT_TRUE(beyond.saturated);
}

TEST(Mm1Test, ZeroArrivalsMeanNoQueueing) {
  const auto r = solve_mm1(0.0, 0.1);
  EXPECT_NEAR(r.queueing_time_sec, 0.0, 1e-12);
  EXPECT_NEAR(r.response_time_sec, 0.1, 1e-12);
}

TEST(Mm1Test, QueueingTimeExplodesNearSaturation) {
  const double s = router_service_time_sec(8192, kT1);
  double prev = 0;
  for (double rate = 1; rate < 1.0 / s; rate += 1) {
    const auto r = solve_mm1(rate, s);
    ASSERT_FALSE(r.saturated);
    EXPECT_GE(r.queueing_time_sec, prev);
    prev = r.queueing_time_sec;
  }
  // Close to saturation the wait dwarfs the service time itself.
  const auto near = solve_mm1(0.99 / s, s);
  EXPECT_GT(near.queueing_time_sec, 10 * s);
}

// ---- DES vs MVA cross-validation ---------------------------------------------

TEST(DesTest, SingleCustomerMatchesBareServiceTime) {
  DesConfig config;
  config.population = 1;
  config.think_time_mean_sec = 0.1;
  config.service_times_sec = {0.02, 0.03};
  config.requests = 50000;
  const auto r = simulate_closed_network(config);
  // No queueing with one customer: R = E[S1] + E[S2] exactly in
  // expectation.
  EXPECT_NEAR(r.mean_response_time_sec, 0.05, 0.002);
  // Little's law on the cycle: X = 1 / (Z + R).
  EXPECT_NEAR(r.throughput_per_sec, 1.0 / 0.15, 0.3);
}

TEST(DesTest, AgreesWithMvaAcrossPopulations) {
  // Exponential service matches MVA's product-form assumptions; the two
  // independent implementations must agree within simulation noise.
  const std::vector<double> service{0.010, 0.025};
  const double think = 0.1;
  const auto curve = solve_mva_curve(service, think, 60);
  for (unsigned n : {1u, 5u, 15u, 30u, 60u}) {
    DesConfig config;
    config.population = n;
    config.think_time_mean_sec = think;
    config.service_times_sec = service;
    config.requests = 150000;
    config.seed = 42 + n;
    const auto des = simulate_closed_network(config);
    const auto& mva = curve[n - 1];
    EXPECT_NEAR(des.mean_response_time_sec, mva.response_time_sec,
                0.06 * mva.response_time_sec + 1e-4)
        << "population " << n;
    EXPECT_NEAR(des.throughput_per_sec, mva.throughput,
                0.05 * mva.throughput)
        << "population " << n;
  }
}

TEST(DesTest, UtilizationMatchesThroughputTimesService) {
  DesConfig config;
  config.population = 20;
  config.think_time_mean_sec = 0.05;
  config.service_times_sec = {0.01, 0.002};
  config.requests = 100000;
  const auto r = simulate_closed_network(config);
  ASSERT_EQ(r.router_utilization.size(), 2u);
  // Utilization law: U_k = X * S_k.
  EXPECT_NEAR(r.router_utilization[0], r.throughput_per_sec * 0.01, 0.03);
  EXPECT_NEAR(r.router_utilization[1], r.throughput_per_sec * 0.002, 0.03);
  EXPECT_LE(r.router_utilization[0], 1.001);
}

TEST(DesTest, DeterministicServiceBeatsExponential) {
  // With the same means, deterministic service produces *less* queueing
  // (M/D/1 waits are half of M/M/1) — so the paper's product-form model
  // is conservative for near-constant packet service times.
  DesConfig config;
  config.population = 40;
  config.think_time_mean_sec = 0.1;
  config.service_times_sec = {0.02, 0.02};
  config.requests = 150000;
  const auto exponential = simulate_closed_network(config);
  config.exponential_service = false;
  config.seed = 7;
  const auto deterministic = simulate_closed_network(config);
  EXPECT_LT(deterministic.mean_response_time_sec,
            exponential.mean_response_time_sec);
}

TEST(DesTest, DeterministicGivenSeed) {
  DesConfig config;
  config.population = 10;
  config.think_time_mean_sec = 0.1;
  config.service_times_sec = {0.01};
  config.requests = 20000;
  const auto a = simulate_closed_network(config);
  const auto b = simulate_closed_network(config);
  EXPECT_EQ(a.mean_response_time_sec, b.mean_response_time_sec);
  EXPECT_EQ(a.throughput_per_sec, b.throughput_per_sec);
}

TEST(QueueingIntegrationTest, PrinsSustainsHigherWriteRatesThanTraditional) {
  // Figure 10's core claim: with 8 KB blocks on T1, traditional saturates
  // at a handful of writes/sec while PRINS (≈ a few hundred bytes per
  // write) sustains far more.
  const double s_traditional = router_service_time_sec(8192, kT1);
  const double s_prins = router_service_time_sec(400, kT1);
  const double max_rate_traditional = 1.0 / s_traditional;
  const double max_rate_prins = 1.0 / s_prins;
  EXPECT_LT(max_rate_traditional, 20.0);
  EXPECT_GT(max_rate_prins, 100.0);
  EXPECT_GT(max_rate_prins / max_rate_traditional, 10.0);
}

}  // namespace
}  // namespace prins
