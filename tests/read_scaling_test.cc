// Read offload: freshness-checked client reads from replicas and the
// load-aware read router.
//
// Covers the full offload contract end to end: the replica-side serve path
// (per-LBA applied table, lease floor, stale NAKs), the primary's conflict
// window classification, router fan-out with local fallback, a stale-read
// soak over a faulty link proving zero freshness violations at 100%
// availability, and epoch safety — a replica adopted by a promoted
// primary refuses the old primary's reads with kStaleEpoch.  Runs under
// the `read_scaling` ctest label so the CI sanitizer matrix sweeps it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "block/mem_disk.h"
#include "common/endian.h"
#include "common/rng.h"
#include "net/faulty.h"
#include "net/inproc.h"
#include "prins/engine.h"
#include "prins/message.h"
#include "prins/read_router.h"
#include "prins/replica.h"

namespace prins {
namespace {

constexpr std::uint32_t kBs = 1024;
constexpr std::uint64_t kBlocks = 64;

Bytes pattern_block(std::uint64_t seed, std::size_t size = kBs) {
  Bytes block(size);
  Rng rng(seed + 1);
  rng.fill(block);
  return block;
}

ReplicationMessage client_read_request(Lba lba, std::uint64_t min_sequence,
                                       std::uint64_t exchange_id = 1,
                                       std::uint64_t epoch = 0) {
  ReplicationMessage req;
  req.kind = MessageKind::kClientReadRequest;
  req.cluster_epoch = epoch;
  req.block_size = kBs;
  req.lba = lba;
  req.sequence = exchange_id;
  append_le64(req.payload, min_sequence);
  return req;
}

/// Primary + one replica over in-proc links: a delta link the engine
/// replicates over, and (optionally faulty) read links for a ReadRouter.
struct OffloadRig {
  std::shared_ptr<MemDisk> primary_disk;
  std::shared_ptr<MemDisk> replica_disk;
  std::shared_ptr<ReplicaEngine> replica;
  std::shared_ptr<PrinsEngine> engine;
  std::shared_ptr<ReadRouter> router;
  std::vector<std::thread> serve_threads;

  explicit OffloadRig(ReadRouterConfig router_config = {},
                      FaultConfig* read_link_faults = nullptr) {
    primary_disk = std::make_shared<MemDisk>(kBlocks, kBs);
    replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
    ReplicaConfig rconfig;
    rconfig.apply_shards = 2;
    replica = std::make_shared<ReplicaEngine>(replica_disk, rconfig);

    EngineConfig config;
    config.policy = ReplicationPolicy::kPrins;
    config.read_from_replicas = true;
    engine = std::make_shared<PrinsEngine>(primary_disk, config);
    auto [delta_client, delta_server] = make_inproc_pair();
    serve(std::move(delta_server));
    engine->add_replica(std::move(delta_client));

    router = std::make_shared<ReadRouter>(engine, router_config);
    auto [read_client, read_server] = make_inproc_pair();
    serve(std::move(read_server));
    std::unique_ptr<Transport> read_end = std::move(read_client);
    if (read_link_faults != nullptr) {
      read_end = std::make_unique<FaultyTransport>(std::move(read_end),
                                                   *read_link_faults);
    }
    router->add_read_replica(std::move(read_end));
  }

  void serve(std::unique_ptr<Transport> transport) {
    serve_threads.emplace_back(
        [r = replica, t = std::shared_ptr<Transport>(std::move(transport))] {
          (void)r->serve(*t);
        });
  }

  ~OffloadRig() {
    router.reset();  // closes the read link
    engine.reset();  // closes the delta link
    for (auto& t : serve_threads) t.join();
  }
};

// ---------------------------------------------------------------------------
// Replica-side serving: freshness proofs, stale NAKs, the lease floor.

TEST(ClientReadServe, FreshDemandReturnsTheBlock) {
  OffloadRig rig;
  const Bytes data = pattern_block(3);
  ASSERT_TRUE(rig.engine->write(5, data).is_ok());
  ASSERT_TRUE(rig.engine->drain().is_ok());

  const std::uint64_t seq = rig.engine->last_sequence();
  auto reply = rig.replica->apply(client_read_request(5, seq, /*id=*/77));
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(reply->kind, MessageKind::kClientReadReply);
  EXPECT_EQ(reply->sequence, 77u);  // echoes the exchange id
  EXPECT_EQ(reply->lba, 5u);
  EXPECT_EQ(reply->payload, data);
  EXPECT_EQ(rig.replica->metrics().client_reads_served, 1u);
}

TEST(ClientReadServe, StaleDemandDrawsStaleReadNak) {
  OffloadRig rig;
  ASSERT_TRUE(rig.engine->write(2, pattern_block(4)).is_ok());
  ASSERT_TRUE(rig.engine->drain().is_ok());

  const std::uint64_t future = rig.engine->last_sequence() + 100;
  auto reply = rig.replica->apply(client_read_request(2, future, /*id=*/9));
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply->kind, MessageKind::kNak);
  EXPECT_EQ(reply->sequence, 9u);
  ASSERT_FALSE(reply->payload.empty());
  EXPECT_EQ(reply->payload[0], static_cast<Byte>(NakReason::kStaleRead));
  EXPECT_GE(rig.replica->metrics().stale_read_naks, 1u);
  EXPECT_EQ(rig.replica->metrics().client_reads_served, 0u);
}

TEST(ClientReadServe, LeaseFloorProvesFreshnessWithoutPerLbaHistory) {
  // A lease at sequence 7 proves ANY demand <= 7, even for an LBA this
  // replica never saw a delta for (e.g. blocks only full-synced).
  auto disk = std::make_shared<MemDisk>(kBlocks, kBs);
  ReplicaEngine replica(disk);

  ReplicationMessage lease;
  lease.kind = MessageKind::kReadLease;
  lease.sequence = 7;
  auto ack = replica.apply(lease);
  ASSERT_TRUE(ack.is_ok());
  EXPECT_EQ(ack->kind, MessageKind::kAck);
  EXPECT_EQ(ack->sequence, 7u);
  EXPECT_EQ(replica.read_lease_floor(), 7u);

  auto covered = replica.apply(client_read_request(3, 7));
  ASSERT_TRUE(covered.is_ok());
  EXPECT_EQ(covered->kind, MessageKind::kClientReadReply);

  auto beyond = replica.apply(client_read_request(3, 8));
  ASSERT_TRUE(beyond.is_ok());
  EXPECT_EQ(beyond->kind, MessageKind::kNak);
  ASSERT_FALSE(beyond->payload.empty());
  EXPECT_EQ(beyond->payload[0], static_cast<Byte>(NakReason::kStaleRead));

  // A lower lease never regresses the floor.
  lease.sequence = 4;
  ASSERT_TRUE(replica.apply(lease).is_ok());
  EXPECT_EQ(replica.read_lease_floor(), 7u);
}

TEST(ClientReadServe, MinSequenceZeroAlwaysServes) {
  auto disk = std::make_shared<MemDisk>(kBlocks, kBs);
  ReplicaEngine replica(disk);
  auto reply = replica.apply(client_read_request(0, 0));
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply->kind, MessageKind::kClientReadReply);
  EXPECT_EQ(reply->payload, Bytes(kBs, Byte{0}));
}

// ---------------------------------------------------------------------------
// Primary-side conflict window.

TEST(ConflictWindow, AckedWritesClassifyOffloadableWithTheirSequence) {
  // With no replicas attached, every write settles synchronously, so its
  // sequence is at or below the read floor by the time write() returns.
  EngineConfig config;
  config.read_from_replicas = true;
  auto engine = std::make_shared<PrinsEngine>(
      std::make_shared<MemDisk>(kBlocks, kBs), config);
  ASSERT_TRUE(engine->write(5, pattern_block(1)).is_ok());
  const std::uint64_t seq = engine->last_sequence();

  std::uint64_t min_sequence = 123;
  EXPECT_EQ(engine->classify_read(5, &min_sequence),
            PrinsEngine::ReadClass::kOffloadable);
  EXPECT_EQ(min_sequence, seq);

  // A never-written LBA has no history to demand.
  EXPECT_EQ(engine->classify_read(9, &min_sequence),
            PrinsEngine::ReadClass::kOffloadable);
  EXPECT_EQ(min_sequence, 0u);
}

TEST(ConflictWindow, UnackedWritesStayLocal) {
  // A replica link whose far end is never served: deltas ship but no ack
  // ever returns, so the write stays in the conflict window forever.
  EngineConfig config;
  config.read_from_replicas = true;
  auto engine = std::make_shared<PrinsEngine>(
      std::make_shared<MemDisk>(kBlocks, kBs), config);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));

  ASSERT_TRUE(engine->write(7, pattern_block(2)).is_ok());
  std::uint64_t min_sequence = 0;
  EXPECT_EQ(engine->classify_read(7, &min_sequence),
            PrinsEngine::ReadClass::kLocal);
  replica_end->close();
}

TEST(ConflictWindow, DisabledConfigKeepsEveryReadLocal) {
  auto engine = std::make_shared<PrinsEngine>(
      std::make_shared<MemDisk>(kBlocks, kBs), EngineConfig{});
  ASSERT_TRUE(engine->write(1, pattern_block(6)).is_ok());
  std::uint64_t min_sequence = 0;
  EXPECT_EQ(engine->classify_read(1, &min_sequence),
            PrinsEngine::ReadClass::kLocal);
}

// ---------------------------------------------------------------------------
// The router: offload, fallback, health.

TEST(ReadRouter, OffloadsConflictFreeReadsToTheReplica) {
  OffloadRig rig;
  std::vector<Bytes> expect;
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    expect.push_back(pattern_block(100 + lba));
    ASSERT_TRUE(rig.engine->write(lba, expect.back()).is_ok());
  }
  ASSERT_TRUE(rig.engine->drain().is_ok());

  Bytes got(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(rig.router->read(lba, got).is_ok());
    EXPECT_EQ(got, expect[lba]) << "lba " << lba;
  }
  const EngineMetrics m = rig.engine->metrics();
  EXPECT_GT(m.replica_reads, 0u);
  EXPECT_EQ(m.replica_reads, kBlocks);  // every read was conflict-free
  EXPECT_EQ(rig.replica->metrics().client_reads_served, kBlocks);
  EXPECT_EQ(rig.router->healthy_links(), 1u);
}

TEST(ReadRouter, FallsBackLocalWhenTheLinkDies) {
  ReadRouterConfig config;
  config.op_timeout = std::chrono::milliseconds(200);
  config.degrade_after = 1;
  OffloadRig rig(config);
  const Bytes data = pattern_block(8);
  ASSERT_TRUE(rig.engine->write(3, data).is_ok());
  ASSERT_TRUE(rig.engine->drain().is_ok());

  // Kill the replica's end of everything: the read exchange now fails, and
  // the router must still serve every read from the primary.
  rig.router.reset();
  auto router = std::make_shared<ReadRouter>(rig.engine, config);
  auto [client, server] = make_inproc_pair();
  server->close();  // dead on arrival
  router->add_read_replica(std::move(client));

  Bytes got(kBs);
  ASSERT_TRUE(router->read(3, got).is_ok());
  EXPECT_EQ(got, data);
  EXPECT_EQ(router->healthy_links(), 0u);  // degraded after the failure
  ASSERT_TRUE(router->read(3, got).is_ok());  // and still serving
  EXPECT_EQ(got, data);
}

TEST(ReadRouter, WritesPassThroughToTheEngine) {
  OffloadRig rig;
  const Bytes data = pattern_block(12);
  ASSERT_TRUE(rig.router->write(4, data).is_ok());
  ASSERT_TRUE(rig.router->flush().is_ok());
  ASSERT_TRUE(rig.engine->drain().is_ok());
  Bytes got(kBs);
  ASSERT_TRUE(rig.replica_disk->read(4, got).is_ok());
  EXPECT_EQ(got, data);
}

// ---------------------------------------------------------------------------
// Stale-read soak: a writer hammers hot LBAs while readers demand
// freshness across a faulty read link.  The oracle packs (version,
// sequence) per LBA; a reader that demanded sequence S must never observe
// a version older than the one written at S.  Every read must return OK —
// fallback keeps availability at 100% whatever the link drops.

TEST(StaleReadSoak, NoFreshnessViolationsAndFullAvailability) {
  FaultConfig faults;
  faults.drop_p = 0.01;
  faults.stall_p = 0.02;
  faults.stall = std::chrono::milliseconds(2);
  faults.seed = 42;
  ReadRouterConfig config;
  config.op_timeout = std::chrono::milliseconds(100);
  config.degrade_after = 1u << 20;  // the soak wants the link to keep trying
  OffloadRig rig(config, &faults);

  constexpr std::size_t kHot = 8;
  constexpr std::uint64_t kWrites = 400;
  constexpr std::size_t kReaders = 3;
  constexpr std::uint64_t kReadsEach = 300;

  // packed = version << 32 | sequence-of-that-version's-write.
  std::array<std::atomic<std::uint64_t>, kHot> oracle{};

  std::thread writer([&] {
    Bytes block(kBs, Byte{0x5a});
    for (std::uint64_t v = 1; v <= kWrites; ++v) {
      const Lba lba = v % kHot;
      std::uint64_t stamp[2] = {v, lba};
      std::memcpy(block.data(), stamp, sizeof(stamp));
      ASSERT_TRUE(rig.engine->write(lba, block).is_ok());
      // Single writer: last_sequence() is this write's sequence.
      const std::uint64_t seq = rig.engine->last_sequence();
      oracle[lba].store((v << 32) | seq, std::memory_order_release);
    }
  });

  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + r);
      Bytes got(kBs);
      for (std::uint64_t i = 0; i < kReadsEach; ++i) {
        const Lba lba = rng.next_below(kHot);
        const std::uint64_t packed =
            oracle[lba].load(std::memory_order_acquire);
        if (packed == 0) continue;
        const std::uint64_t want_version = packed >> 32;
        const std::uint64_t want_sequence = packed & 0xffffffffu;
        // Availability: every read must come back OK, faults or not.
        ASSERT_TRUE(rig.router->read_fresh(lba, got, want_sequence).is_ok());
        std::uint64_t stamp[2];
        std::memcpy(stamp, got.data(), sizeof(stamp));
        if (stamp[0] < want_version || stamp[1] != lba) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);

  // Quiesced phase: with every write acked the conflict window opens, so
  // demand reads must now offload across the same faulty link — and still
  // come back fresh despite the drops and stalls.
  ASSERT_TRUE(rig.engine->drain().is_ok());
  Bytes got(kBs);
  for (int round = 0; round < 4; ++round) {
    for (Lba lba = 0; lba < kHot; ++lba) {
      const std::uint64_t packed = oracle[lba].load(std::memory_order_acquire);
      const std::uint64_t want_version = packed >> 32;
      const std::uint64_t want_sequence = packed & 0xffffffffu;
      ASSERT_TRUE(rig.router->read_fresh(lba, got, want_sequence).is_ok());
      std::uint64_t stamp[2];
      std::memcpy(stamp, got.data(), sizeof(stamp));
      EXPECT_EQ(stamp[0], want_version);
      EXPECT_EQ(stamp[1], lba);
    }
  }
  const EngineMetrics m = rig.engine->metrics();
  EXPECT_GT(m.replica_reads, 0u);  // offload actually happened
}

// ---------------------------------------------------------------------------
// Epoch safety: a replica that has adopted a promoted primary's epoch
// refuses the zombie's client reads with kStaleEpoch; the zombie's router
// degrades the link sticky and keeps serving from its own device.

TEST(ReadOffloadFailover, FencedReplicaRefusesZombieReads) {
  // Shared replica S serves three links: deltas from old primary A, A's
  // read link, and deltas from the soon-to-be-promoted spare.
  auto s_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto s_replica = std::make_shared<ReplicaEngine>(s_disk);
  std::vector<std::thread> serve_threads;
  auto serve = [&](std::unique_ptr<Transport> t) {
    serve_threads.emplace_back(
        [r = s_replica, t = std::shared_ptr<Transport>(std::move(t))] {
          (void)r->serve(*t);
        });
  };

  EngineConfig a_config;
  a_config.read_from_replicas = true;
  auto a_engine = std::make_shared<PrinsEngine>(
      std::make_shared<MemDisk>(kBlocks, kBs), a_config);
  auto [a_delta_client, a_delta_server] = make_inproc_pair();
  serve(std::move(a_delta_server));
  a_engine->add_replica(std::move(a_delta_client));

  auto router = std::make_shared<ReadRouter>(a_engine);
  auto [a_read_client, a_read_server] = make_inproc_pair();
  serve(std::move(a_read_server));
  router->add_read_replica(std::move(a_read_client));

  const Bytes data = pattern_block(21);
  ASSERT_TRUE(a_engine->write(6, data).is_ok());
  ASSERT_TRUE(a_engine->drain().is_ok());

  // Offload works while everyone agrees on the epoch.
  Bytes got(kBs);
  ASSERT_TRUE(router->read(6, got).is_ok());
  EXPECT_EQ(got, data);
  EXPECT_EQ(a_engine->metrics().replica_reads, 1u);
  EXPECT_EQ(router->healthy_links(), 1u);

  // Failover: promote a spare (the PR-9 mechanism), which mints epoch 1;
  // its first delta teaches S the new epoch.
  ReplicaConfig spare_config;
  spare_config.keep_trap_log = true;
  ReplicaEngine spare(std::make_shared<MemDisk>(kBlocks, kBs), spare_config);
  auto promoted = spare.promote(EngineConfig{});
  ASSERT_TRUE(promoted.is_ok()) << promoted.status().to_string();
  std::shared_ptr<PrinsEngine> p_engine = std::move(*promoted);
  EXPECT_GE(p_engine->cluster_epoch(), 1u);
  auto [p_delta_client, p_delta_server] = make_inproc_pair();
  serve(std::move(p_delta_server));
  p_engine->add_replica(std::move(p_delta_client));
  ASSERT_TRUE(p_engine->write(0, pattern_block(30)).is_ok());
  ASSERT_TRUE(p_engine->drain().is_ok());
  EXPECT_GE(s_replica->cluster_epoch(), 1u);

  // The zombie's read link is now fenced: the read still succeeds (local
  // fallback), the link degrades sticky, and S records the fencing NAK.
  ASSERT_TRUE(router->read(6, got).is_ok());
  EXPECT_EQ(got, data);
  EXPECT_EQ(router->healthy_links(), 0u);
  EXPECT_EQ(a_engine->metrics().replica_reads, 1u);  // no new offloads
  EXPECT_GE(s_replica->metrics().stale_epoch_naks, 1u);

  // Still fully available afterwards, entirely from the zombie's device.
  ASSERT_TRUE(router->read(6, got).is_ok());
  EXPECT_EQ(got, data);

  router.reset();
  p_engine.reset();
  a_engine.reset();
  for (auto& t : serve_threads) t.join();
}

}  // namespace
}  // namespace prins
