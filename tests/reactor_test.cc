// Tests for the event-driven transport substrate: the TimerWheel in
// isolation (caller-supplied clock, fully deterministic), the Reactor loop
// (timers, posts, fd dispatch), and ReactorTcpTransport's per-connection
// state machines — partial-write resume, recv_for deadlines on the wheel,
// a 256-connection echo soak through the handler path, and a reconnect
// storm under FaultyListener-injected disconnects.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/faulty.h"
#include "net/inproc.h"
#include "net/reactor.h"
#include "net/reactor_tcp.h"
#include "net/tcp.h"
#include "prins/engine.h"
#include "prins/replica.h"

namespace prins {
namespace {

using namespace std::chrono_literals;

Bytes message(std::string_view s) { return to_bytes(as_bytes(s)); }

// Wait for `done` to become true without hammering the CPU; returns false
// on timeout so tests fail with an assertion instead of hanging ctest.
bool await(const std::function<bool()>& done,
           std::chrono::milliseconds limit = 10s) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// ---- TimerWheel (simulated time) -------------------------------------------

TEST(TimerWheelTest, FiresInDeadlineOrder) {
  TimerWheel wheel;
  const auto t0 = TimerWheel::Clock::now();
  std::vector<int> fired;
  // Scheduled out of order, including two in the same tick.
  wheel.schedule_at(t0 + 30ms, [&] { fired.push_back(3); });
  wheel.schedule_at(t0 + 10ms, [&] { fired.push_back(1); });
  wheel.schedule_at(t0 + 20ms, [&] { fired.push_back(2); });
  wheel.schedule_at(t0 + 20ms, [&] { fired.push_back(2); });
  EXPECT_EQ(wheel.pending(), 4u);

  std::vector<std::function<void()>> due;
  EXPECT_EQ(wheel.collect_due(t0 + 5ms, due), 0u);
  EXPECT_EQ(wheel.collect_due(t0 + 15ms, due), 1u);
  EXPECT_EQ(wheel.collect_due(t0 + 60ms, due), 3u);
  for (auto& cb : due) cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CancelRemovesPendingEntry) {
  TimerWheel wheel;
  const auto t0 = TimerWheel::Clock::now();
  bool fired = false;
  const TimerId id = wheel.schedule_at(t0 + 10ms, [&] { fired = true; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // second cancel is a no-op
  std::vector<std::function<void()>> due;
  EXPECT_EQ(wheel.collect_due(t0 + 1h, due), 0u);
  EXPECT_FALSE(fired);
}

TEST(TimerWheelTest, BeyondHorizonEntriesWaitFullRounds) {
  // Default geometry is 256 slots of 1ms: a 300ms deadline hashes to a
  // slot the cursor passes long before the deadline.  The round count must
  // keep it parked on the first pass.
  TimerWheel wheel;
  const auto t0 = TimerWheel::Clock::now();
  bool fired = false;
  wheel.schedule_at(t0 + 300ms, [&] { fired = true; });
  std::vector<std::function<void()>> due;
  EXPECT_EQ(wheel.collect_due(t0 + 290ms, due), 0u);
  EXPECT_EQ(wheel.collect_due(t0 + 320ms, due), 1u);
  for (auto& cb : due) cb();
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, NextDeadlineTracksEarliest) {
  TimerWheel wheel;
  const auto t0 = TimerWheel::Clock::now();
  EXPECT_FALSE(wheel.next_deadline().has_value());
  wheel.schedule_at(t0 + 50ms, [] {});
  const TimerId early = wheel.schedule_at(t0 + 10ms, [] {});
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), t0 + 10ms);
  wheel.cancel(early);
  EXPECT_EQ(*wheel.next_deadline(), t0 + 50ms);
}

TEST(TimerWheelTest, PastDeadlineFiresOnNextCollect) {
  TimerWheel wheel;
  const auto t0 = TimerWheel::Clock::now();
  std::vector<std::function<void()>> due;
  ASSERT_EQ(wheel.collect_due(t0 + 40ms, due), 0u);  // advance the cursor
  wheel.schedule_at(t0 + 5ms, [] {});                // already in the past
  EXPECT_EQ(wheel.collect_due(t0 + 41ms, due), 1u);
}

// ---- Reactor (live loop) ---------------------------------------------------

TEST(ReactorTest, TimersFireInOrderOnLoopThread) {
  auto reactor = Reactor::create();
  ASSERT_TRUE(reactor.is_ok()) << reactor.status().to_string();
  std::mutex m;
  std::vector<int> order;
  std::atomic<bool> on_loop{false};
  (*reactor)->add_timer(30ms, [&] {
    std::lock_guard lock(m);
    order.push_back(3);
  });
  (*reactor)->add_timer(5ms, [&] {
    on_loop = (*reactor)->on_loop_thread();
    std::lock_guard lock(m);
    order.push_back(1);
  });
  (*reactor)->add_timer(15ms, [&] {
    std::lock_guard lock(m);
    order.push_back(2);
  });
  ASSERT_TRUE(await([&] {
    std::lock_guard lock(m);
    return order.size() == 3;
  }));
  std::lock_guard lock(m);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(on_loop);
  EXPECT_EQ((*reactor)->pending_timers(), 0u);
}

TEST(ReactorTest, CancelTimerPreventsFire) {
  auto reactor = Reactor::create();
  ASSERT_TRUE(reactor.is_ok());
  std::atomic<bool> cancelled_fired{false};
  std::atomic<bool> sentinel_fired{false};
  const TimerId id =
      (*reactor)->add_timer(40ms, [&] { cancelled_fired = true; });
  EXPECT_TRUE((*reactor)->cancel_timer(id));
  (*reactor)->add_timer(60ms, [&] { sentinel_fired = true; });
  ASSERT_TRUE(await([&] { return sentinel_fired.load(); }));
  EXPECT_FALSE(cancelled_fired.load());
}

TEST(ReactorTest, PostRunsClosureOnLoopThread) {
  auto reactor = Reactor::create();
  ASSERT_TRUE(reactor.is_ok());
  std::atomic<bool> ran{false};
  std::atomic<bool> on_loop{false};
  (*reactor)->post([&] {
    on_loop = (*reactor)->on_loop_thread();
    ran = true;
  });
  ASSERT_TRUE(await([&] { return ran.load(); }));
  EXPECT_TRUE(on_loop.load());
  EXPECT_FALSE((*reactor)->on_loop_thread());
}

// ---- ReactorTcpTransport ---------------------------------------------------

TEST(ReactorTcpTest, RoundTripOverLoopback) {
  auto pool = ReactorPool::create(1);
  ASSERT_TRUE(pool.is_ok()) << pool.status().to_string();
  auto listener = ReactorListener::listen(*pool, 0);
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();

  std::thread server([&] {
    auto conn = (*listener)->accept();
    ASSERT_TRUE(conn.is_ok());
    for (;;) {
      auto got = (*conn)->recv();
      if (!got.is_ok()) break;
      ASSERT_TRUE((*conn)->send(*got).is_ok());
    }
  });

  auto client = ReactorTcpTransport::connect(
      (*pool)->at(0).shared_from_this(), "127.0.0.1", (*listener)->port());
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  EXPECT_EQ((*client)->describe(), "reactor-tcp");

  // Small, empty, and multi-MB messages survive the incremental framing.
  Rng rng(1);
  for (std::size_t n : {0ul, 1ul, 100ul, 70000ul, 3000000ul}) {
    Bytes data(n);
    rng.fill(data);
    ASSERT_TRUE((*client)->send(data).is_ok()) << n;
    auto got = (*client)->recv();
    ASSERT_TRUE(got.is_ok()) << n << ": " << got.status().to_string();
    EXPECT_EQ(*got, data) << n;
  }
  (*client)->close();
  server.join();
}

TEST(ReactorTcpTest, InteroperatesWithBlockingTcp) {
  // Wire format is shared: a reactor client against a blocking TcpListener.
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.is_ok());
  std::thread server([&] {
    auto conn = (*listener)->accept();
    ASSERT_TRUE(conn.is_ok());
    auto got = (*conn)->recv();
    ASSERT_TRUE(got.is_ok());
    ASSERT_TRUE((*conn)->send(*got).is_ok());
  });

  auto reactor = Reactor::create();
  ASSERT_TRUE(reactor.is_ok());
  auto client =
      ReactorTcpTransport::connect(*reactor, "localhost", (*listener)->port());
  ASSERT_TRUE(client.is_ok());
  const ByteSpan parts[] = {as_bytes("scatter"), as_bytes("-"),
                            as_bytes("gather")};
  ASSERT_TRUE((*client)->send_vec(parts).is_ok());
  auto got = (*client)->recv();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, message("scatter-gather"));
  server.join();
}

TEST(ReactorTcpTest, PartialWriteResumesUnderTinySndbuf) {
  // A 4 KiB send buffer forces writev to take frames in slivers; the state
  // machine must resume the head frame at its offset on each EPOLLOUT.
  auto pool = ReactorPool::create(1);
  ASSERT_TRUE(pool.is_ok());
  auto listener = ReactorListener::listen(*pool, 0);
  ASSERT_TRUE(listener.is_ok());

  std::thread server([&] {
    auto conn = (*listener)->accept();
    ASSERT_TRUE(conn.is_ok());
    for (int i = 0; i < 8; ++i) {
      auto got = (*conn)->recv();
      ASSERT_TRUE(got.is_ok());
      ASSERT_TRUE((*conn)->send(*got).is_ok());
    }
  });

  ReactorTcpOptions tiny;
  tiny.sndbuf_bytes = 4096;
  auto client = ReactorTcpTransport::connect(
      (*pool)->at(0).shared_from_this(), "127.0.0.1", (*listener)->port(),
      tiny);
  ASSERT_TRUE(client.is_ok());

  Rng rng(7);
  std::vector<Bytes> sent;
  for (int i = 0; i < 8; ++i) {
    Bytes data(512 * 1024 + i);  // frames straddle many sndbuf windows
    rng.fill(data);
    ASSERT_TRUE((*client)->send(data).is_ok());
    sent.push_back(std::move(data));
  }
  for (int i = 0; i < 8; ++i) {
    auto got = (*client)->recv();
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    EXPECT_EQ(*got, sent[i]) << i;
  }
  (*client)->close();
  server.join();
}

TEST(ReactorTcpTest, RecvForDeadlineRidesTheTimerWheel) {
  auto pool = ReactorPool::create(1);
  ASSERT_TRUE(pool.is_ok());
  auto listener = ReactorListener::listen(*pool, 0);
  ASSERT_TRUE(listener.is_ok());
  auto client = ReactorTcpTransport::connect(
      (*pool)->at(0).shared_from_this(), "127.0.0.1", (*listener)->port());
  ASSERT_TRUE(client.is_ok());
  auto server = (*listener)->accept();
  ASSERT_TRUE(server.is_ok());

  const auto start = std::chrono::steady_clock::now();
  auto nothing = (*client)->recv_for(50ms);
  EXPECT_EQ(nothing.status().code(), ErrorCode::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - start, 50ms);

  ASSERT_TRUE((*server)->send(message("late")).is_ok());
  auto got = (*client)->recv_for(5s);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, message("late"));
  // Both the expired and the cancelled deadline are off the wheel again.
  EXPECT_TRUE(await(
      [&] { return (*pool)->at(0).pending_timers() == 0; }, 1s));
}

TEST(ReactorTcpTest, EchoSoak256Connections) {
  // One reactor pool serves every connection through the handler path: no
  // thread per link on either side.  256 connections × 20 round trips.
  constexpr std::size_t kConns = 256;
  constexpr int kRounds = 20;
  auto server_pool = ReactorPool::create(2);
  ASSERT_TRUE(server_pool.is_ok());
  auto listener = ReactorListener::listen(*server_pool, 0);
  ASSERT_TRUE(listener.is_ok());

  // Echo handlers capture the transport by shared_ptr so a handler running
  // on the loop thread can never outlive its transport; the cycle
  // (conn -> handler -> transport -> conn) is broken at teardown by
  // resetting the handler.
  std::vector<std::shared_ptr<Transport>> server_conns;
  std::thread acceptor([&] {
    for (std::size_t i = 0; i < kConns; ++i) {
      auto conn = (*listener)->accept();
      ASSERT_TRUE(conn.is_ok());
      std::shared_ptr<Transport> t = std::move(*conn);
      static_cast<ReactorTcpTransport*>(t.get())->set_message_handler(
          [t](Bytes&& m) { (void)t->send(m); });
      server_conns.push_back(std::move(t));
    }
  });

  auto client_pool = ReactorPool::create(2);
  ASSERT_TRUE(client_pool.is_ok());
  auto echoed = std::make_shared<std::atomic<std::size_t>>(0);
  std::vector<std::unique_ptr<Transport>> clients;
  for (std::size_t i = 0; i < kConns; ++i) {
    auto client = ReactorTcpTransport::connect(
        (*client_pool)->next().shared_from_this(), "127.0.0.1",
        (*listener)->port());
    ASSERT_TRUE(client.is_ok()) << i << ": " << client.status().to_string();
    static_cast<ReactorTcpTransport*>(client->get())
        ->set_message_handler([echoed](Bytes&&) {
          echoed->fetch_add(1, std::memory_order_relaxed);
        });
    clients.push_back(std::move(*client));
  }
  acceptor.join();

  Bytes ping(64, Byte{0x5a});
  for (int round = 0; round < kRounds; ++round) {
    for (auto& client : clients) {
      ASSERT_TRUE(client->send(ping).is_ok());
    }
  }
  EXPECT_TRUE(
      await([&] { return echoed->load() == kConns * kRounds; }, 30s))
      << "echoed " << echoed->load() << " of " << kConns * kRounds;
  for (auto& client : clients) client->close();
  for (auto& conn : server_conns) {
    static_cast<ReactorTcpTransport*>(conn.get())->set_message_handler(nullptr);
  }
}

TEST(ReactorTcpTest, ReconnectStormStaysClean) {
  // Every accepted link is cut hard by FaultyListener after 3 server
  // sends; the client reconnects through the churn.  Exercises the
  // add_fd/remove_fd/close races the sanitizer matrix watches.
  auto pool = ReactorPool::create(1);
  ASSERT_TRUE(pool.is_ok());
  auto inner = ReactorListener::listen(*pool, 0);
  ASSERT_TRUE(inner.is_ok());
  const std::uint16_t port = (*inner)->port();
  FaultConfig cut;
  cut.disconnect_after = 3;
  auto listener =
      std::make_unique<FaultyListener>(std::move(*inner), cut);

  std::atomic<bool> stop{false};
  std::thread server([&] {
    while (!stop.load()) {
      auto conn = listener->accept();
      if (!conn.is_ok()) return;  // listener closed
      for (;;) {
        auto got = (*conn)->recv();
        if (!got.is_ok()) break;
        if (!(*conn)->send(*got).is_ok()) break;
      }
    }
  });

  std::size_t reconnects = 0;
  std::size_t echoes = 0;
  for (int i = 0; i < 40; ++i) {
    auto client = ReactorTcpTransport::connect(
        (*pool)->at(0).shared_from_this(), "127.0.0.1", port);
    ASSERT_TRUE(client.is_ok()) << i;
    ++reconnects;
    for (;;) {
      if (!(*client)->send(message("ping")).is_ok()) break;
      auto got = (*client)->recv_for(2s);
      if (!got.is_ok()) break;  // link cut mid-exchange
      ++echoes;
    }
    (*client)->close();
  }
  EXPECT_EQ(reconnects, 40u);
  // disconnect_after=3 lets each connection echo 3 times before the cut.
  EXPECT_GE(echoes, 40u);
  stop = true;
  listener->close();
  server.join();
}

TEST(ReactorTcpTest, CloseUnblocksPendingRecv) {
  auto pool = ReactorPool::create(1);
  ASSERT_TRUE(pool.is_ok());
  auto listener = ReactorListener::listen(*pool, 0);
  ASSERT_TRUE(listener.is_ok());
  auto client = ReactorTcpTransport::connect(
      (*pool)->at(0).shared_from_this(), "127.0.0.1", (*listener)->port());
  ASSERT_TRUE(client.is_ok());
  auto server = (*listener)->accept();
  ASSERT_TRUE(server.is_ok());

  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    (*client)->close();
  });
  auto got = (*client)->recv();
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kUnavailable);
  closer.join();
}

// ---- engine backoff on reactor timers --------------------------------------

TEST(ReactorEngineTest, RetryAndHealBackoffRideTheTimerWheel) {
  // Same lossy-fabric convergence the self-heal soak proves, but with
  // EngineConfig::reactor set: every retry backoff and heal delay becomes
  // a wheel entry firing a gate instead of a per-thread timed sleep.
  constexpr std::uint32_t kBs = 1024;
  constexpr std::uint64_t kBlocks = 64;
  InprocNetwork network;
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto listener = network.listen("replica");
  ASSERT_TRUE(listener.is_ok());
  auto shared_listener = std::shared_ptr<Listener>(std::move(*listener));
  std::thread server = replica_serve_in_background(replica, shared_listener);

  auto reactor = Reactor::create();
  ASSERT_TRUE(reactor.is_ok());
  std::atomic<std::uint64_t> seed{900};
  auto faulty_link = [&](std::uint64_t disconnect_after)
      -> Result<std::unique_ptr<Transport>> {
    auto raw = network.connect("replica");
    if (!raw.is_ok()) return raw.status();
    FaultConfig faults;
    faults.drop_p = 0.02;
    faults.disconnect_after = disconnect_after;
    faults.seed = seed++;
    return std::unique_ptr<Transport>(
        std::make_unique<FaultyTransport>(std::move(*raw), faults));
  };

  EngineConfig config;
  config.keep_trap_log = true;
  config.retry.max_attempts = 6;
  config.retry.base_backoff = std::chrono::milliseconds(1);
  config.retry.max_backoff = std::chrono::milliseconds(10);
  config.retry.op_timeout = std::chrono::milliseconds(250);
  config.reconnect = [&](std::size_t) { return faulty_link(0); };
  config.reactor = *reactor;

  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  {
    auto link = faulty_link(/*disconnect_after=*/150);  // hard cut mid-run
    ASSERT_TRUE(link.is_ok());
    engine->add_replica(std::move(*link));
  }

  Rng rng(31);
  for (int i = 0; i < 600; ++i) {
    Bytes block(kBs);
    rng.fill(block);
    ASSERT_TRUE(engine->write(rng.next_below(kBlocks), block).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());

  const EngineMetrics metrics = engine->metrics();
  EXPECT_GT(metrics.retries, 0u);      // drops forced wheel-timed backoffs
  EXPECT_GE(metrics.reconnects, 1u);   // the cut forced a wheel-timed heal
  Bytes a(kBs), b(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(primary->read(lba, a).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, b).is_ok());
    ASSERT_EQ(a, b) << "diverged at lba " << lba;
  }
  engine.reset();  // destructor cancels any parked gates
  EXPECT_TRUE(
      await([&] { return (*reactor)->pending_timers() == 0; }, 2s));
  shared_listener->close();
  server.join();
}

TEST(ReactorEnvTest, KnobsParse) {
  // Only checks the parser contract; the suite never mutates the real env.
  const std::size_t threads = reactor_threads_from_env();
  EXPECT_GE(threads, 1u);
  EXPECT_LE(threads, 64u);
}

}  // namespace
}  // namespace prins
