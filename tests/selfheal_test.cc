// Failure-path regression tests and the self-healing soak: sticky-error
// clearing across multiple replicas, RAID-tap delta hygiene on failed
// writes, journal watermark unfreeze after resync, and end-to-end
// convergence over a lossy, flaky fabric with zero operator intervention.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <unistd.h>

#include "block/faulty_disk.h"
#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/faulty.h"
#include "net/inproc.h"
#include "prins/engine.h"
#include "prins/journal.h"
#include "prins/replica.h"
#include "raid/raid_array.h"

namespace prins {
namespace {

constexpr std::uint32_t kBs = 1024;
constexpr std::uint64_t kBlocks = 128;

// Sanitizer instrumentation slows the reply path ~10x, so a wall-clock
// reply timeout tuned for a release build fires falsely and inflates the
// retry count.  Stretch the timing knobs to keep the fault schedule (not
// the scheduler) the thing being tested.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr int kTimingScale = 10;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr int kTimingScale = 10;
#else
constexpr int kTimingScale = 1;
#endif
#else
constexpr int kTimingScale = 1;
#endif

Bytes random_block(std::uint64_t seed, std::size_t n = kBs) {
  Rng rng(seed);
  Bytes b(n);
  rng.fill(b);
  return b;
}

bool devices_match(BlockDevice& a, BlockDevice& b) {
  Bytes ba(a.block_size()), bb(b.block_size());
  for (Lba lba = 0; lba < a.num_blocks(); ++lba) {
    EXPECT_TRUE(a.read(lba, ba).is_ok());
    EXPECT_TRUE(b.read(lba, bb).is_ok());
    if (ba != bb) {
      ADD_FAILURE() << "devices diverge at lba " << lba;
      return false;
    }
  }
  return true;
}

std::string temp_journal_path() {
  static std::atomic<int> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("prins_selfheal_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++)))
      .string();
}

// --- Satellite 1: reattach_replica must not absolve other failed links ---

TEST(ReattachTest, ReattachingOneReplicaKeepsTheErrorOfTheOther) {
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_unique<PrinsEngine>(primary, config);

  std::vector<std::shared_ptr<MemDisk>> disks;
  std::vector<std::shared_ptr<ReplicaEngine>> replicas;
  std::vector<std::thread> servers;
  for (int i = 0; i < 2; ++i) {
    disks.push_back(std::make_shared<MemDisk>(kBlocks, kBs));
    replicas.push_back(std::make_shared<ReplicaEngine>(disks.back()));
    auto [primary_end, replica_end] = make_inproc_pair();
    engine->add_replica(std::move(primary_end));
    servers.emplace_back(
        [r = replicas.back(),
         t = std::shared_ptr<Transport>(std::move(replica_end))] {
          (void)r->serve(*t);
        });
  }

  ASSERT_TRUE(engine->write(1, random_block(11)).is_ok());
  ASSERT_TRUE(engine->drain().is_ok());

  // Both links die (reattach with pairs whose far end is already closed).
  for (std::size_t i = 0; i < 2; ++i) {
    auto [dead_primary_end, dead_replica_end] = make_inproc_pair();
    dead_replica_end->close();
    ASSERT_TRUE(
        engine->reattach_replica(i, std::move(dead_primary_end)).is_ok());
  }
  for (auto& s : servers) s.join();
  servers.clear();

  ASSERT_TRUE(engine->write(2, random_block(12)).is_ok());
  EXPECT_FALSE(engine->drain().is_ok());

  // Revive only replica 0: the sticky error must survive — replica 1 is
  // still down, and clearing it here would report lost writes as fine.
  {
    auto [primary_end, replica_end] = make_inproc_pair();
    ASSERT_TRUE(engine->reattach_replica(0, std::move(primary_end)).is_ok());
    servers.emplace_back(
        [r = replicas[0],
         t = std::shared_ptr<Transport>(std::move(replica_end))] {
          (void)r->serve(*t);
        });
  }
  EXPECT_FALSE(engine->drain().is_ok());

  // Revive replica 1 too: now the error clears and traffic flows to both.
  {
    auto [primary_end, replica_end] = make_inproc_pair();
    ASSERT_TRUE(engine->reattach_replica(1, std::move(primary_end)).is_ok());
    servers.emplace_back(
        [r = replicas[1],
         t = std::shared_ptr<Transport>(std::move(replica_end))] {
          (void)r->serve(*t);
        });
  }
  EXPECT_TRUE(engine->drain().is_ok());

  const Bytes post = random_block(13);
  ASSERT_TRUE(engine->write(5, post).is_ok());
  ASSERT_TRUE(engine->drain().is_ok());
  Bytes out(kBs);
  for (auto& disk : disks) {
    ASSERT_TRUE(disk->read(5, out).is_ok());
    EXPECT_EQ(out, post);
  }

  engine.reset();
  for (auto& s : servers) s.join();
}

// --- Satellite 2: no stale RAID-tap delta survives a failed write ---

TEST(RaidTapTest, FailedMultiBlockWriteLeavesNoStaleTapDelta) {
  // A member disk dies mid multi-block write: the engine's write fails
  // partway, and every tap delta must have been consumed — a stale entry
  // would be handed to the *next* write of that LBA as its parity.
  std::vector<std::shared_ptr<BlockDevice>> members;
  auto flaky_member = std::make_shared<FaultyDisk>(
      std::make_shared<MemDisk>(64, kBs), FaultyDisk::Config{});
  members.push_back(flaky_member);
  for (int i = 1; i < 4; ++i) {
    members.push_back(std::make_shared<MemDisk>(64, kBs));
  }
  auto array_or = RaidArray::create(RaidLevel::kRaid5, members);
  ASSERT_TRUE(array_or.is_ok());
  auto array = std::shared_ptr<RaidArray>(std::move(*array_or));

  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_unique<PrinsEngine>(array, config);

  auto replica_disk = std::make_shared<MemDisk>(array->num_blocks(), kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        (void)r->serve(*t);
      });

  ASSERT_TRUE(engine->write(0, random_block(20)).is_ok());
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_EQ(engine->tap_backlog(), 0u);

  // Member 0 dies; an 8-block write must hit it (every RAID-5 stripe uses
  // all four members as data or parity) and fail partway through.
  flaky_member->set_dead(true);
  const Bytes span = random_block(21, 8 * kBs);
  EXPECT_FALSE(engine->write(0, span).is_ok());
  EXPECT_EQ(engine->tap_backlog(), 0u);  // nothing leaked on the error path
  ASSERT_TRUE(engine->drain().is_ok());  // replication itself is healthy

  // The disk comes back; the retried write must replicate with *fresh*
  // deltas and converge (a stale tap delta would poison these blocks).
  flaky_member->set_dead(false);
  ASSERT_TRUE(engine->write(0, span).is_ok());
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_EQ(engine->tap_backlog(), 0u);
  EXPECT_TRUE(devices_match(*array, *replica_disk));

  auto bad = array->scrub();
  ASSERT_TRUE(bad.is_ok());
  EXPECT_EQ(*bad, 0u);

  engine.reset();
  server.join();
}

// --- Satellite 3: the journal watermark unfreezes after a full resync ---

TEST(JournalFreezeTest, WatermarkAdvancesAgainAfterReattachAndResync) {
  struct JournalFile {
    std::string path = temp_journal_path();
    ~JournalFile() { std::remove(path.c_str()); }
  } file;
  auto journal_or = ReplicationJournal::open(file.path);
  ASSERT_TRUE(journal_or.is_ok());
  auto journal = std::shared_ptr<ReplicationJournal>(std::move(*journal_or));

  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.keep_trap_log = true;
  config.journal = journal;
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  auto engine = std::make_unique<PrinsEngine>(primary, config);

  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  std::vector<std::thread> servers;
  {
    auto [primary_end, replica_end] = make_inproc_pair();
    engine->add_replica(std::move(primary_end));
    servers.emplace_back(
        [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
          (void)r->serve(*t);
        });
  }

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->write(i, random_block(30 + i)).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_EQ(journal->acked_sequence(), 10u);

  // Outage: writes 11..20 are dropped by the dead link and the watermark
  // freezes so the journal keeps them replayable.
  {
    auto [dead_primary_end, dead_replica_end] = make_inproc_pair();
    dead_replica_end->close();
    ASSERT_TRUE(
        engine->reattach_replica(0, std::move(dead_primary_end)).is_ok());
  }
  servers[0].join();
  servers.clear();
  for (int i = 10; i < 20; ++i) {
    // The first outage write is queued then dropped (setting the sticky
    // error); later ones fail fast.  All land locally, in the journal,
    // and in the trap log either way.
    (void)engine->write(i, random_block(30 + i));
  }
  EXPECT_FALSE(engine->drain().is_ok());
  EXPECT_EQ(journal->acked_sequence(), 10u);  // frozen

  // Recovery: reattach + delta resync delivers everything the outage
  // dropped, so the freeze has nothing left to guard.
  {
    auto [primary_end, replica_end] = make_inproc_pair();
    ASSERT_TRUE(engine->reattach_replica(0, std::move(primary_end)).is_ok());
    servers.emplace_back(
        [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
          (void)r->serve(*t);
        });
  }
  auto resynced = engine->resync_replica(0);
  ASSERT_TRUE(resynced.is_ok()) << resynced.status().to_string();
  EXPECT_GT(*resynced, 0u);
  EXPECT_TRUE(devices_match(*primary, *replica_disk));
  EXPECT_GT(journal->acked_sequence(), 10u);  // unfrozen: moving again

  // ...and the next distributed write catches the watermark up entirely
  // (pre-fix it stayed frozen forever and the journal grew without bound).
  ASSERT_TRUE(engine->write(5, random_block(99)).is_ok());
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_EQ(journal->acked_sequence(), journal->max_sequence());
  EXPECT_EQ(journal->pending_count(), 0u);

  engine.reset();
  for (auto& s : servers) s.join();
}

// --- Fault-injection soak: convergence with zero operator intervention ---

TEST(SelfHealSoakTest, ConvergesUnderDropsFlipsDuplicatesAndADisconnect) {
  InprocNetwork network;
  struct Node {
    std::shared_ptr<MemDisk> disk;
    std::shared_ptr<ReplicaEngine> replica;
    std::shared_ptr<Listener> listener;
    std::thread server;
  };
  std::vector<Node> nodes(3);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].disk = std::make_shared<MemDisk>(kBlocks, kBs);
    nodes[i].replica = std::make_shared<ReplicaEngine>(nodes[i].disk);
    auto listener = network.listen("replica-" + std::to_string(i));
    ASSERT_TRUE(listener.is_ok());
    nodes[i].listener = std::shared_ptr<Listener>(std::move(*listener));
    nodes[i].server =
        replica_serve_in_background(nodes[i].replica, nodes[i].listener);
  }

  static std::atomic<std::uint64_t> reconnect_seed{500};
  auto faulty_link = [&network](std::size_t index, std::uint64_t seed,
                                std::uint64_t disconnect_after)
      -> Result<std::unique_ptr<Transport>> {
    PRINS_ASSIGN_OR_RETURN(
        std::unique_ptr<Transport> raw,
        network.connect("replica-" + std::to_string(index)));
    FaultConfig faults;
    faults.drop_p = 0.01;
    faults.corrupt_p = 0.005;
    faults.duplicate_p = 0.01;
    faults.disconnect_after = disconnect_after;
    faults.seed = seed;
    return std::unique_ptr<Transport>(
        std::make_unique<FaultyTransport>(std::move(raw), faults));
  };

  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.keep_trap_log = true;
  config.coalesce_writes = true;
  config.pipeline_depth = 4;
  config.retry.max_attempts = 8;
  config.retry.base_backoff = std::chrono::milliseconds(1);
  config.retry.multiplier = 2.0;
  config.retry.max_backoff = std::chrono::milliseconds(20);
  config.retry.op_timeout = std::chrono::milliseconds(25 * kTimingScale);
  config.reconnect = [&faulty_link](std::size_t index) {
    return faulty_link(index, reconnect_seed++, /*disconnect_after=*/0);
  };

  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    // Replica 1's link is hard-cut mid-run; the engine must reconnect and
    // replay on its own.  (Coalescing folds many writes per wire message,
    // so the cut threshold is well below the logical write count.)
    auto link = faulty_link(i, 100 + i, i == 1 ? 1000 : 0);
    ASSERT_TRUE(link.is_ok());
    engine->add_replica(std::move(*link));
  }

  Rng rng(4242);
  std::uint64_t issued = 0;
  for (int i = 0; i < 10000; ++i) {
    const bool wide = (i % 10) == 9;  // every tenth write spans two blocks
    const std::uint64_t span = wide ? 2 : 1;
    const Lba lba = rng.next_below(kBlocks - span + 1);
    ASSERT_TRUE(
        engine->write(lba, random_block(777000 + i, span * kBs)).is_ok());
    issued += span;
  }
  ASSERT_TRUE(engine->drain().is_ok());

  for (auto& node : nodes) {
    EXPECT_TRUE(devices_match(*primary, *node.disk));
  }
  const EngineMetrics metrics = engine->metrics();
  std::printf("soak: writes=%llu retries=%llu reconnects=%llu resyncs=%llu\n",
              static_cast<unsigned long long>(metrics.writes),
              static_cast<unsigned long long>(metrics.retries),
              static_cast<unsigned long long>(metrics.reconnects),
              static_cast<unsigned long long>(metrics.auto_resyncs));
  EXPECT_EQ(metrics.writes, issued);
  EXPECT_GE(metrics.reconnects, 1u);  // the disconnect was survived
  EXPECT_GT(metrics.retries, 0u);     // the drops made it work for this
  // Bounded recovery effort: with ~1% drops a healthy retry path needs a
  // few hundred rounds, not a runaway storm.  Sanitizer scheduling
  // fragments the pipeline into many more (smaller) wire batches, each a
  // fresh fault draw, so those builds get proportional headroom.
  EXPECT_LT(metrics.retries, kTimingScale > 1 ? issued * 2 : issued / 2);

  engine.reset();
  for (auto& node : nodes) {
    node.listener->close();
    node.server.join();
  }
}

TEST(SelfHealSoakTest, PipelinedReplicaRetiresEveryWriteAcrossDisconnect) {
  // The pipelined replica (4 LBA-striped apply workers, batched kAckBatch
  // acks) behind a lossy link that is hard-cut mid-run.  The reconnect
  // replays every un-acked frame; batched-ack retirement and the striped
  // dedup window must still deliver exactly-once semantics: each logical
  // write acked once, redeliveries dropped, volumes byte-identical.
  InprocNetwork network;
  auto disk = std::make_shared<MemDisk>(kBlocks, kBs);
  ReplicaConfig replica_config;
  replica_config.apply_shards = 4;
  replica_config.ack_coalesce_max = 16;
  replica_config.old_block_cache_blocks = kBlocks;
  auto replica = std::make_shared<ReplicaEngine>(disk, replica_config);
  ASSERT_EQ(replica->apply_shards(), 4u);
  auto listener_or = network.listen("replica");
  ASSERT_TRUE(listener_or.is_ok());
  auto listener = std::shared_ptr<Listener>(std::move(*listener_or));
  std::thread server = replica_serve_in_background(replica, listener);

  static std::atomic<std::uint64_t> seed{900};
  auto faulty_link = [&network](std::uint64_t link_seed,
                                std::uint64_t disconnect_after)
      -> Result<std::unique_ptr<Transport>> {
    PRINS_ASSIGN_OR_RETURN(std::unique_ptr<Transport> raw,
                           network.connect("replica"));
    FaultConfig faults;
    faults.drop_p = 0.01;
    faults.duplicate_p = 0.01;
    faults.disconnect_after = disconnect_after;
    faults.seed = link_seed;
    return std::unique_ptr<Transport>(
        std::make_unique<FaultyTransport>(std::move(raw), faults));
  };

  EngineConfig config;
  config.policy = ReplicationPolicy::kPrinsRle;
  config.keep_trap_log = true;
  config.pipeline_depth = 8;  // deep batches so kAckBatch replies dominate
  config.retry.max_attempts = 8;
  config.retry.base_backoff = std::chrono::milliseconds(1);
  config.retry.max_backoff = std::chrono::milliseconds(20);
  config.retry.op_timeout = std::chrono::milliseconds(25 * kTimingScale);
  config.reconnect = [&faulty_link](std::size_t) {
    return faulty_link(seed++, /*disconnect_after=*/0);
  };

  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  {
    auto link = faulty_link(101, /*disconnect_after=*/500);
    ASSERT_TRUE(link.is_ok());
    engine->add_replica(std::move(*link));
  }

  Rng rng(31337);
  constexpr int kWrites = 2000;
  for (int i = 0; i < kWrites; ++i) {
    const Lba lba = rng.next_below(kBlocks);
    ASSERT_TRUE(engine->write(lba, random_block(555000 + i)).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());

  EXPECT_TRUE(devices_match(*primary, *disk));
  const EngineMetrics em = engine->metrics();
  EXPECT_EQ(em.writes, static_cast<std::uint64_t>(kWrites));
  // Exactly-once retirement through kAckBatch range coverage: one ack per
  // logical write, no double-retire from a range replayed after reconnect.
  EXPECT_EQ(em.acks, em.writes);
  EXPECT_GE(em.reconnects, 1u);

  // Post-reconnect replay redelivers frames whose acks the cut swallowed;
  // the striped dedup window must absorb them (applying a parity delta
  // twice would XOR the write back out — devices_match above is the proof).
  const ReplicaMetrics rm = replica->metrics();
  EXPECT_GE(rm.writes_applied, static_cast<std::uint64_t>(kWrites));
  EXPECT_GT(rm.cache_hits, 0u);

  engine.reset();
  listener->close();
  server.join();
}

TEST(SelfHealSoakTest, DegradedLinkHealsOnceTheFactoryRecovers) {
  // Retries exhaust (the reconnect factory itself is down for a while), the
  // link enters the degraded state, and the engine still converges with no
  // reattach_replica call anywhere: reconnect + kHello + trap-log fold.
  InprocNetwork network;
  auto disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(disk);
  auto listener_or = network.listen("replica");
  ASSERT_TRUE(listener_or.is_ok());
  auto listener = std::shared_ptr<Listener>(std::move(*listener_or));
  std::thread server = replica_serve_in_background(replica, listener);

  auto calls = std::make_shared<std::atomic<int>>(0);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.keep_trap_log = true;
  config.pipeline_depth = 2;
  config.retry.max_attempts = 2;
  config.retry.base_backoff = std::chrono::milliseconds(1);
  config.retry.max_backoff = std::chrono::milliseconds(5);
  config.retry.op_timeout = std::chrono::milliseconds(10 * kTimingScale);
  config.reconnect =
      [&network, calls](std::size_t) -> Result<std::unique_ptr<Transport>> {
    if (calls->fetch_add(1) < 3) {
      return unavailable("reconnect endpoint still down");
    }
    return network.connect("replica");
  };

  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  {
    auto raw = network.connect("replica");
    ASSERT_TRUE(raw.is_ok());
    FaultConfig faults;
    faults.disconnect_after = 50;  // hard cut partway through the run
    engine->add_replica(std::make_unique<FaultyTransport>(std::move(*raw),
                                                          faults));
  }

  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Lba lba = rng.next_below(kBlocks);
    ASSERT_TRUE(engine->write(lba, random_block(888000 + i)).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());  // blocks until the heal lands

  EXPECT_TRUE(devices_match(*primary, *disk));
  const EngineMetrics metrics = engine->metrics();
  EXPECT_GE(metrics.auto_resyncs, 1u);
  EXPECT_GE(metrics.reconnects, 1u);
  EXPECT_GE(calls->load(), 4);  // the down factory really was exercised

  // The healed link is a first-class citizen again: new writes replicate.
  const Bytes post = random_block(999);
  ASSERT_TRUE(engine->write(3, post).is_ok());
  ASSERT_TRUE(engine->drain().is_ok());
  Bytes out(kBs);
  ASSERT_TRUE(disk->read(3, out).is_ok());
  EXPECT_EQ(out, post);

  engine.reset();
  listener->close();
  server.join();
}

}  // namespace
}  // namespace prins
