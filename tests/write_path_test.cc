// Sharded zero-copy write pipeline: buffer pool lifecycle, scatter-gather
// framing equivalence across every transport, zero-copy message views, the
// one-global-lock-per-write regression guard, and a concurrent-writer
// torture test (the striping correctness proof: replicas stay byte-
// identical under contending writers on every policy).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "block/mem_disk.h"
#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/endian.h"
#include "common/rng.h"
#include "net/faulty.h"
#include "net/inproc.h"
#include "net/latent.h"
#include "net/tcp.h"
#include "net/traffic_meter.h"
#include "prins/engine.h"
#include "prins/intent_log.h"
#include "prins/message.h"
#include "prins/replica.h"

namespace prins {
namespace {

constexpr std::uint32_t kBs = 1024;
constexpr std::uint64_t kBlocks = 256;

Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  Bytes b(n);
  rng.fill(b);
  return b;
}

// ---- BufferPool -----------------------------------------------------------

TEST(BufferPoolTest, ReleasedBuffersAreReused) {
  BufferPool pool(kBs, /*max_free=*/8);
  { PooledBuffer a = pool.acquire(kBs); }  // released to the freelist
  PooledBuffer b = pool.acquire(kBs);
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.allocated, 1u);
  EXPECT_EQ(stats.reused, 1u);
}

TEST(BufferPoolTest, CopyBumpsUseCountAndDefersRelease) {
  BufferPool pool(kBs);
  PooledBuffer a = pool.acquire(16);
  EXPECT_EQ(a.use_count(), 1u);
  {
    PooledBuffer b = a;
    EXPECT_EQ(a.use_count(), 2u);
    EXPECT_EQ(b.span().data(), a.span().data());
  }
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(pool.stats().free_buffers, 0u);  // still held by `a`
}

TEST(BufferPoolTest, MaxFreeZeroNeverCaches) {
  BufferPool pool(kBs, /*max_free=*/0);
  { PooledBuffer a = pool.acquire(kBs); }
  { PooledBuffer b = pool.acquire(kBs); }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.allocated, 2u);
  EXPECT_EQ(stats.reused, 0u);
  EXPECT_EQ(stats.free_buffers, 0u);
}

TEST(BufferPoolTest, BuffersOutliveThePool) {
  PooledBuffer survivor;
  {
    BufferPool pool(64);
    survivor = pool.acquire(64);
    survivor.mutable_bytes()[0] = Byte{42};
  }
  // The pool is gone; the buffer must still be valid and safely released.
  EXPECT_EQ(survivor.span()[0], Byte{42});
  survivor.reset();
}

TEST(BufferPoolTest, HeapBuffersWorkWithoutAPool) {
  PooledBuffer h = PooledBuffer::heap(random_bytes(7, 32));
  EXPECT_EQ(h.size(), 32u);
  PooledBuffer copy = h;
  EXPECT_EQ(h.use_count(), 2u);
  h.reset();
  EXPECT_EQ(copy.use_count(), 1u);
}

TEST(BufferPoolTest, AcquireResizesReusedBuffers) {
  BufferPool pool(kBs, 8);
  { PooledBuffer a = pool.acquire(kBs); }
  PooledBuffer b = pool.acquire(10);
  EXPECT_EQ(b.size(), 10u);
  PooledBuffer c = pool.acquire(kBs);
  EXPECT_EQ(c.size(), kBs);
}

// ---- Transport::send_vec --------------------------------------------------

// A transport that deliberately does NOT override send_vec, to exercise the
// base-class concatenation fallback.
class FallbackTransport final : public Transport {
 public:
  explicit FallbackTransport(std::unique_ptr<Transport> inner)
      : inner_(std::move(inner)) {}
  Status send(ByteSpan message) override { return inner_->send(message); }
  Result<Bytes> recv() override { return inner_->recv(); }
  Result<Bytes> recv_for(std::chrono::milliseconds t) override {
    return inner_->recv_for(t);
  }
  void close() override { inner_->close(); }
  std::string describe() const override { return "fallback"; }

 private:
  std::unique_ptr<Transport> inner_;
};

void check_send_vec_roundtrip(Transport& sender, Transport& receiver) {
  const Bytes a = random_bytes(1, 38);
  const Bytes b = random_bytes(2, 900);
  const Bytes c = random_bytes(3, 4);
  Bytes whole;
  append(whole, a);
  append(whole, b);
  append(whole, c);

  const ByteSpan parts[] = {a, b, c};
  ASSERT_TRUE(sender.send_vec(parts).is_ok());
  auto got = receiver.recv();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, whole) << "3-part send_vec must equal the concatenation";

  // Empty parts vanish; a lone part equals a plain send.
  const ByteSpan sparse[] = {ByteSpan(), a, ByteSpan()};
  ASSERT_TRUE(sender.send_vec(sparse).is_ok());
  got = receiver.recv();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, a);
}

TEST(SendVecTest, InprocMatchesConcatenation) {
  auto [left, right] = make_inproc_pair();
  check_send_vec_roundtrip(*left, *right);
}

TEST(SendVecTest, LatentMatchesConcatenation) {
  auto [left, right] = make_latent_pair(std::chrono::microseconds(0));
  check_send_vec_roundtrip(*left, *right);
}

TEST(SendVecTest, FaultFreeFaultyMatchesConcatenation) {
  auto [left, right] = make_inproc_pair();
  FaultyTransport faulty(std::move(left), FaultConfig{});
  check_send_vec_roundtrip(faulty, *right);
}

TEST(SendVecTest, MeterAccountsWholeMessages) {
  auto [left, right] = make_inproc_pair();
  TrafficMeter meter(std::move(left));
  check_send_vec_roundtrip(meter, *right);
  EXPECT_EQ(meter.sent().messages, 2u);
  EXPECT_EQ(meter.sent().payload_bytes, 38u + 900u + 4u + 38u);
}

TEST(SendVecTest, BaseClassFallbackMatchesConcatenation) {
  auto [left, right] = make_inproc_pair();
  FallbackTransport fallback(std::move(left));
  check_send_vec_roundtrip(fallback, *right);
}

TEST(SendVecTest, TcpWritevMatchesConcatenation) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();
  std::unique_ptr<Transport> accepted;
  std::thread server([&] {
    auto conn = (*listener)->accept();
    ASSERT_TRUE(conn.is_ok());
    accepted = std::move(*conn);
  });
  auto client = TcpTransport::connect("127.0.0.1", (*listener)->port());
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  server.join();
  check_send_vec_roundtrip(**client, *accepted);

  // More parts than the writev fast path handles (falls back to one copy).
  std::vector<Bytes> many;
  Bytes whole;
  std::vector<ByteSpan> parts;
  for (int i = 0; i < 40; ++i) {
    many.push_back(random_bytes(100 + i, 13));
    append(whole, many.back());
  }
  for (const Bytes& p : many) parts.push_back(p);
  ASSERT_TRUE((*client)->send_vec(parts).is_ok());
  auto got = accepted->recv();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, whole);
  (*client)->close();
}

// ---- Zero-copy message views ----------------------------------------------

ReplicationMessage sample_message() {
  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = ReplicationPolicy::kPrinsRle;
  msg.block_size = kBs;
  msg.lba = 99;
  msg.sequence = 1234;
  msg.timestamp_us = 777;
  msg.payload = random_bytes(5, 300);
  return msg;
}

TEST(MessageViewTest, DecodeViewAliasesTheWireBuffer) {
  const ReplicationMessage msg = sample_message();
  const Bytes wire = msg.encode();
  auto view = ReplicationMessage::decode_view(wire);
  ASSERT_TRUE(view.is_ok()) << view.status().to_string();
  EXPECT_EQ(view->kind, msg.kind);
  EXPECT_EQ(view->policy, msg.policy);
  EXPECT_EQ(view->block_size, msg.block_size);
  EXPECT_EQ(view->lba, msg.lba);
  EXPECT_EQ(view->sequence, msg.sequence);
  EXPECT_EQ(view->timestamp_us, msg.timestamp_us);
  ASSERT_EQ(view->payload.size(), msg.payload.size());
  // The payload must be a window into `wire`, not a copy.
  EXPECT_GE(view->payload.data(), wire.data());
  EXPECT_LE(view->payload.data() + view->payload.size(),
            wire.data() + wire.size());
  const ReplicationMessage copy = view->to_message();
  EXPECT_EQ(copy.payload, msg.payload);
  EXPECT_EQ(copy.sequence, msg.sequence);
}

TEST(MessageViewTest, EncodeHeaderMatchesFullEncode) {
  const ReplicationMessage msg = sample_message();
  const Bytes wire = msg.encode();
  Byte header[ReplicationMessage::kWireHeaderSize];
  msg.encode_header(header, msg.payload.size());
  ASSERT_GE(wire.size(), sizeof(header));
  EXPECT_TRUE(std::equal(std::begin(header), std::end(header), wire.begin()));
  // Chained CRC over header-then-payload equals the encoded trailer.
  std::uint32_t crc = crc32c(ByteSpan(header));
  crc = crc32c(msg.payload, crc);
  const std::uint32_t trailer =
      load_le32(ByteSpan(wire).subspan(wire.size() - 4));
  EXPECT_EQ(crc, trailer);
}

TEST(MessageViewTest, TornFramesAreRejected) {
  const Bytes wire = sample_message().encode();
  for (std::size_t cut : {std::size_t{0}, std::size_t{10},
                          ReplicationMessage::kWireHeaderSize,
                          wire.size() - 1}) {
    EXPECT_FALSE(
        ReplicationMessage::decode_view(ByteSpan(wire).subspan(0, cut))
            .is_ok())
        << "cut=" << cut;
  }
  Bytes corrupt = wire;
  corrupt[corrupt.size() / 2] ^= Byte{0x40};
  EXPECT_FALSE(ReplicationMessage::decode_view(corrupt).is_ok());
}

// ---- Engine: sharding + lock-count regression -----------------------------

struct Rig {
  std::shared_ptr<MemDisk> primary_disk;
  std::shared_ptr<MemDisk> replica_disk;
  std::shared_ptr<ReplicaEngine> replica;
  std::unique_ptr<PrinsEngine> engine;
  std::thread server;

  explicit Rig(EngineConfig config, ReplicaConfig replica_config = {}) {
    primary_disk = std::make_shared<MemDisk>(kBlocks, kBs);
    replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
    replica = std::make_shared<ReplicaEngine>(replica_disk, replica_config);
    engine = std::make_unique<PrinsEngine>(primary_disk, config);
    auto [primary_end, replica_end] = make_inproc_pair();
    engine->add_replica(std::move(primary_end));
    server = std::thread(
        [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
          ASSERT_TRUE(r->serve(*t).is_ok());
        });
  }

  ~Rig() {
    engine.reset();
    if (server.joinable()) server.join();
  }

  bool devices_match() {
    Bytes a(kBs), b(kBs);
    for (Lba lba = 0; lba < kBlocks; ++lba) {
      EXPECT_TRUE(primary_disk->read(lba, a).is_ok());
      EXPECT_TRUE(replica_disk->read(lba, b).is_ok());
      if (a != b) return false;
    }
    return true;
  }
};

TEST(WritePipelineTest, ShardCountResolvesToConfiguredPowerOfTwo) {
  EngineConfig config;
  config.write_shards = 6;  // rounds up to 8
  PrinsEngine engine(std::make_shared<MemDisk>(kBlocks, kBs), config);
  EXPECT_EQ(engine.write_shard_count(), 8u);
}

TEST(WritePipelineTest, ShardCountReadsEnvWhenUnset) {
  ::setenv("PRINS_WRITE_SHARDS", "3", 1);
  EngineConfig config;  // write_shards = 0 -> env -> 3 -> rounds to 4
  PrinsEngine engine(std::make_shared<MemDisk>(kBlocks, kBs), config);
  ::unsetenv("PRINS_WRITE_SHARDS");
  EXPECT_EQ(engine.write_shard_count(), 4u);
}

TEST(WritePipelineTest, OneGlobalLockPerReplicatedWrite) {
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrinsRle;
  config.write_shards = 8;
  Rig rig(config);

  ASSERT_TRUE(rig.engine->drain().is_ok());
  const std::uint64_t before = rig.engine->debug_submit_global_lock_count();
  constexpr std::uint64_t kWrites = 64;
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(
        rig.engine->write(i % kBlocks, random_bytes(i, kBs)).is_ok());
  }
  const std::uint64_t after = rig.engine->debug_submit_global_lock_count();
  // The sharded submit path takes the engine-wide mutex exactly once per
  // message (in distribute()); the pre-shard pipeline took three.
  EXPECT_EQ(after - before, kWrites);
  ASSERT_TRUE(rig.engine->drain().is_ok());
}

TEST(WritePipelineTest, PoolServesSteadyStateWrites) {
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrinsRle;
  Rig rig(config);
  // Frame buffers live in the outbox until the replica acks, so drain
  // between rounds; steady state then runs entirely off the freelists.
  for (std::uint64_t round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          rig.engine->write((round * 20 + i) % 16, random_bytes(i, kBs))
              .is_ok());
    }
    ASSERT_TRUE(rig.engine->drain().is_ok());
  }
  const BufferPool::Stats blocks = rig.engine->block_pool_stats();
  const BufferPool::Stats frames = rig.engine->frame_pool_stats();
  // Steady state runs off the freelists: far more reuses than allocations.
  EXPECT_GT(blocks.reused, blocks.allocated * 4);
  EXPECT_GT(frames.reused, frames.allocated * 4);
  EXPECT_TRUE(rig.devices_match());
}

TEST(WritePipelineTest, PoolingOffStillReplicatesCorrectly) {
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.pool_buffers = false;
  Rig rig(config);
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.engine->write(i % kBlocks, random_bytes(i, kBs)).is_ok());
  }
  ASSERT_TRUE(rig.engine->drain().is_ok());
  EXPECT_TRUE(rig.devices_match());
  EXPECT_EQ(rig.engine->block_pool_stats().free_buffers, 0u);
}

// ---- Concurrent-writer torture --------------------------------------------

class TorturePolicies : public ::testing::TestWithParam<ReplicationPolicy> {};

TEST_P(TorturePolicies, ConcurrentWritersConvergeByteIdentical) {
  EngineConfig config;
  config.policy = GetParam();
  config.write_shards = 8;
  config.coalesce_writes = true;
  config.keep_trap_log = true;
  Rig rig(config);

  constexpr int kThreads = 6;
  constexpr int kWritesPerThread = 120;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      Bytes block(kBs);
      for (int i = 0; i < kWritesPerThread; ++i) {
        // Half the traffic lands in a per-thread disjoint stripe, half on a
        // shared hot range, so both the parallel path and the same-block
        // serialization path stay busy.
        const bool hot = (i % 2) == 0;
        const Lba lba = hot ? rng.next_below(8)
                            : 8 + static_cast<Lba>(t) * 40 + rng.next_below(40);
        rng.fill(block);
        if (!rig.engine->write(lba, block).is_ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(rig.engine->drain().is_ok());
  EXPECT_TRUE(rig.devices_match());
  const EngineMetrics m = rig.engine->metrics();
  EXPECT_EQ(m.writes, static_cast<std::uint64_t>(kThreads) * kWritesPerThread);
  // Every logical write is acknowledged exactly once (folded or not).
  EXPECT_EQ(m.acks, m.writes);
}

// The replica-side pipeline under the same contention: LBA-striped apply
// workers, the old-block apply cache, intent-log group commit, and batched
// acks all on at once.  Replicas must still converge byte-identical and
// every logical write must retire exactly once — the striping proof for
// the apply side (same-block deltas stay ordered, XOR chains telescope).
TEST(WritePipelineTest, PipelinedReplicaTortureConvergesByteIdentical) {
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrinsRle;
  config.write_shards = 8;

  const std::string intent_path =
      ::testing::TempDir() + "/pipelined_replica_torture_intents.log";
  std::remove(intent_path.c_str());
  auto intent_log = WriteIntentLog::open(intent_path);
  ASSERT_TRUE(intent_log.is_ok()) << intent_log.status().to_string();

  ReplicaConfig replica_config;
  replica_config.apply_shards = 4;
  replica_config.old_block_cache_blocks = kBlocks;  // everything stays hot
  replica_config.intent_log = std::shared_ptr<WriteIntentLog>(
      std::move(*intent_log));
  Rig rig(config, replica_config);
  ASSERT_EQ(rig.replica->apply_shards(), 4u);

  constexpr int kThreads = 6;
  constexpr int kWritesPerThread = 120;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(2000 + static_cast<std::uint64_t>(t));
      Bytes block(kBs);
      for (int i = 0; i < kWritesPerThread; ++i) {
        const bool hot = (i % 2) == 0;
        const Lba lba = hot ? rng.next_below(8)
                            : 8 + static_cast<Lba>(t) * 40 + rng.next_below(40);
        rng.fill(block);
        if (!rig.engine->write(lba, block).is_ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(rig.engine->drain().is_ok());
  EXPECT_TRUE(rig.devices_match());

  const EngineMetrics em = rig.engine->metrics();
  EXPECT_EQ(em.writes,
            static_cast<std::uint64_t>(kThreads) * kWritesPerThread);
  // Exactly-once retirement survives ack batching: each logical write is
  // acknowledged once, whether its completion rode a kAck or a kAckBatch.
  EXPECT_EQ(em.acks, em.writes);

  const ReplicaMetrics rm = rig.replica->metrics();
  // The hot range's A_old reads must hit the write-through apply cache
  // (every applied block re-enters the cache, so only cold blocks miss).
  EXPECT_GT(rm.cache_hits, 0u);
  EXPECT_LE(rm.cache_misses, kBlocks);
  // Group commit amortizes fsyncs across the four workers under load.
  EXPECT_GT(rm.intent_records, 0u);
  EXPECT_LE(rm.intent_fsyncs, rm.intent_records);
  std::remove(intent_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, TorturePolicies,
    ::testing::Values(ReplicationPolicy::kTraditional,
                      ReplicationPolicy::kTraditionalCompressed,
                      ReplicationPolicy::kPrins, ReplicationPolicy::kPrinsRle),
    [](const auto& info) {
      switch (info.param) {
        case ReplicationPolicy::kTraditional: return "Traditional";
        case ReplicationPolicy::kTraditionalCompressed: return "TraditionalLz";
        case ReplicationPolicy::kPrins: return "Prins";
        case ReplicationPolicy::kPrinsRle: return "PrinsRle";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace prins
