// Tests for the symmetric multi-node cluster: every node is a primary for
// its own volume and a replica host for its ring predecessors.
#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace prins {
namespace {

class ClusterPolicies : public ::testing::TestWithParam<ReplicationPolicy> {};

TEST_P(ClusterPolicies, AllReplicasConvergeAcrossTheRing) {
  ClusterConfig config;
  config.nodes = 4;
  config.replicas_per_node = 2;
  config.policy = GetParam();
  config.block_size = 2048;
  config.blocks_per_node = 64;
  config.dirty_bytes_per_write = 200;
  config.seed = 11;
  SymmetricCluster cluster(config);
  auto report = cluster.run(100);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report->all_replicas_consistent);
  EXPECT_EQ(report->total_writes, 4u * 100u);
  // Fabric messages: every write goes to R replicas.
  EXPECT_EQ(report->fabric.messages, 4u * 100u * 2u);
  EXPECT_GT(report->fabric.payload_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, ClusterPolicies,
                         ::testing::Values(
                             ReplicationPolicy::kTraditional,
                             ReplicationPolicy::kPrins));

TEST(ClusterTest, PrinsCutsFabricTrafficClusterWide) {
  std::uint64_t bytes_by_policy[2] = {0, 0};
  int i = 0;
  for (ReplicationPolicy policy :
       {ReplicationPolicy::kTraditional, ReplicationPolicy::kPrins}) {
    ClusterConfig config;
    config.nodes = 5;
    config.replicas_per_node = 2;
    config.policy = policy;
    config.block_size = 8192;
    config.blocks_per_node = 64;
    config.dirty_bytes_per_write = 600;  // ~7% of the block
    config.seed = 12;
    SymmetricCluster cluster(config);
    auto report = cluster.run(60);
    ASSERT_TRUE(report.is_ok());
    EXPECT_TRUE(report->all_replicas_consistent);
    bytes_by_policy[i++] = report->fabric.payload_bytes;
  }
  EXPECT_GT(bytes_by_policy[0], 4 * bytes_by_policy[1]);
}

TEST(ClusterTest, FullReplicationRing) {
  // R = N-1: everyone replicates to everyone else.
  ClusterConfig config;
  config.nodes = 3;
  config.replicas_per_node = 2;
  config.policy = ReplicationPolicy::kPrins;
  config.block_size = 1024;
  config.blocks_per_node = 32;
  config.seed = 13;
  SymmetricCluster cluster(config);
  auto report = cluster.run(50);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->all_replicas_consistent);
  EXPECT_EQ(report->fabric.messages, 3u * 50u * 2u);
}

TEST(ClusterTest, SingleReplicaPair) {
  ClusterConfig config;
  config.nodes = 2;
  config.replicas_per_node = 1;
  config.policy = ReplicationPolicy::kPrinsRle;
  config.block_size = 4096;
  config.blocks_per_node = 32;
  config.seed = 14;
  SymmetricCluster cluster(config);
  auto report = cluster.run(80);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->all_replicas_consistent);
  EXPECT_GT(report->mean_payload_bytes, 0.0);
  EXPECT_LT(report->mean_payload_bytes, 4096.0);
}

}  // namespace
}  // namespace prins
