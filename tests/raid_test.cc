// Tests for the RAID substrate: parity maintenance, the PRINS observer
// tap, degraded reads, rebuild, scrub, and small-write I/O amplification.
#include <gtest/gtest.h>

#include "block/faulty_disk.h"
#include "block/mem_disk.h"
#include "block/stats_disk.h"
#include "common/rng.h"
#include "parity/xor.h"
#include "raid/raid_array.h"

namespace prins {
namespace {

constexpr std::uint32_t kBs = 512;
constexpr std::uint64_t kMemberBlocks = 32;

std::vector<std::shared_ptr<BlockDevice>> make_members(unsigned n) {
  std::vector<std::shared_ptr<BlockDevice>> members;
  for (unsigned i = 0; i < n; ++i) {
    members.push_back(std::make_shared<MemDisk>(kMemberBlocks, kBs));
  }
  return members;
}

Bytes random_blocks(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  Bytes b(n);
  rng.fill(b);
  return b;
}

struct LevelCase {
  RaidLevel level;
  unsigned disks;
};

class RaidLevels : public ::testing::TestWithParam<LevelCase> {};

TEST_P(RaidLevels, ReadBackAcrossWholeArray) {
  auto array = RaidArray::create(GetParam().level,
                                 make_members(GetParam().disks));
  ASSERT_TRUE(array.is_ok()) << array.status().to_string();
  auto& raid = **array;
  Rng rng(1);
  std::vector<Bytes> written(raid.num_blocks());
  for (Lba lba = 0; lba < raid.num_blocks(); ++lba) {
    written[lba] = random_blocks(1000 + lba, kBs);
    ASSERT_TRUE(raid.write(lba, written[lba]).is_ok());
  }
  Bytes out(kBs);
  for (Lba lba = 0; lba < raid.num_blocks(); ++lba) {
    ASSERT_TRUE(raid.read(lba, out).is_ok());
    EXPECT_EQ(out, written[lba]) << "lba " << lba;
  }
}

TEST_P(RaidLevels, MultiBlockWritesSpanStripes) {
  auto array =
      RaidArray::create(GetParam().level, make_members(GetParam().disks));
  ASSERT_TRUE(array.is_ok());
  auto& raid = **array;
  const std::size_t blocks = 7;
  const Bytes data = random_blocks(2, blocks * kBs);
  ASSERT_TRUE(raid.write(3, data).is_ok());
  Bytes out(blocks * kBs);
  ASSERT_TRUE(raid.read(3, out).is_ok());
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(Levels, RaidLevels,
                         ::testing::Values(LevelCase{RaidLevel::kRaid0, 2},
                                           LevelCase{RaidLevel::kRaid0, 4},
                                           LevelCase{RaidLevel::kRaid4, 3},
                                           LevelCase{RaidLevel::kRaid4, 5},
                                           LevelCase{RaidLevel::kRaid5, 3},
                                           LevelCase{RaidLevel::kRaid5, 6}));

TEST(RaidArrayTest, CreateValidatesMemberCountAndGeometry) {
  EXPECT_FALSE(RaidArray::create(RaidLevel::kRaid5, make_members(2)).is_ok());
  EXPECT_FALSE(RaidArray::create(RaidLevel::kRaid0, make_members(1)).is_ok());
  auto mixed = make_members(2);
  mixed.push_back(std::make_shared<MemDisk>(kMemberBlocks, kBs * 2));
  EXPECT_FALSE(RaidArray::create(RaidLevel::kRaid5, std::move(mixed)).is_ok());
  auto with_null = make_members(3);
  with_null[1] = nullptr;
  EXPECT_FALSE(
      RaidArray::create(RaidLevel::kRaid5, std::move(with_null)).is_ok());
}

TEST(RaidArrayTest, CapacityExcludesParity) {
  auto r5 = RaidArray::create(RaidLevel::kRaid5, make_members(5));
  ASSERT_TRUE(r5.is_ok());
  EXPECT_EQ((*r5)->num_blocks(), kMemberBlocks * 4);
  auto r0 = RaidArray::create(RaidLevel::kRaid0, make_members(5));
  ASSERT_TRUE(r0.is_ok());
  EXPECT_EQ((*r0)->num_blocks(), kMemberBlocks * 5);
}

TEST(RaidArrayTest, ScrubCleanAfterRandomWrites) {
  for (RaidLevel level : {RaidLevel::kRaid4, RaidLevel::kRaid5}) {
    auto array = RaidArray::create(level, make_members(4));
    ASSERT_TRUE(array.is_ok());
    auto& raid = **array;
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
      const Lba lba = rng.next_below(raid.num_blocks());
      ASSERT_TRUE(raid.write(lba, random_blocks(i, kBs)).is_ok());
    }
    auto bad = raid.scrub();
    ASSERT_TRUE(bad.is_ok());
    EXPECT_EQ(*bad, 0u) << "level " << static_cast<int>(level);
  }
}

TEST(RaidArrayTest, ScrubDetectsTamperedMember) {
  auto members = make_members(4);
  auto array = RaidArray::create(RaidLevel::kRaid5, members);
  ASSERT_TRUE(array.is_ok());
  auto& raid = **array;
  ASSERT_TRUE(raid.write(0, random_blocks(4, kBs)).is_ok());
  // Flip a byte behind the array's back.
  Bytes block(kBs);
  ASSERT_TRUE(members[0]->read(0, block).is_ok());
  block[0] ^= 0xFF;
  ASSERT_TRUE(members[0]->write(0, block).is_ok());
  auto bad = raid.scrub();
  ASSERT_TRUE(bad.is_ok());
  EXPECT_EQ(*bad, 1u);
}

TEST(RaidArrayTest, ObserverReceivesExactParityDelta) {
  auto array = RaidArray::create(RaidLevel::kRaid5, make_members(4));
  ASSERT_TRUE(array.is_ok());
  auto& raid = **array;

  const Bytes before = random_blocks(5, kBs);
  ASSERT_TRUE(raid.write(7, before).is_ok());

  Lba observed_lba = ~0ull;
  Bytes observed_delta;
  std::size_t observed_dirty = 0;
  raid.set_parity_observer([&](Lba lba, ByteSpan delta, std::size_t dirty) {
    observed_lba = lba;
    observed_delta = to_bytes(delta);
    observed_dirty = dirty;
  });

  const Bytes after = random_blocks(6, kBs);
  ASSERT_TRUE(raid.write(7, after).is_ok());

  EXPECT_EQ(observed_lba, 7u);
  EXPECT_EQ(observed_delta, parity_delta(after, before));
  EXPECT_EQ(observed_dirty, count_nonzero(observed_delta));
  // And the delta really recovers the new data from the old.
  Bytes recovered(kBs);
  xor_to(recovered, observed_delta, before);
  EXPECT_EQ(recovered, after);

  raid.set_parity_observer(nullptr);
  ASSERT_TRUE(raid.write(7, before).is_ok());  // no crash with observer off
}

TEST(RaidArrayTest, Raid0HasNoObserverCallbacks) {
  auto array = RaidArray::create(RaidLevel::kRaid0, make_members(2));
  ASSERT_TRUE(array.is_ok());
  int calls = 0;
  (*array)->set_parity_observer([&](Lba, ByteSpan, std::size_t) { ++calls; });
  ASSERT_TRUE((*array)->write(0, random_blocks(7, kBs)).is_ok());
  EXPECT_EQ(calls, 0);
}

TEST(RaidArrayTest, SmallWriteIoAmplificationIsTwoReadsTwoWrites) {
  // The classic RAID-5 small-write penalty — and the reason P' is free.
  auto members = make_members(4);
  std::vector<std::shared_ptr<StatsDisk>> stats;
  std::vector<std::shared_ptr<BlockDevice>> wrapped;
  for (auto& m : members) {
    auto s = std::make_shared<StatsDisk>(m);
    stats.push_back(s);
    wrapped.push_back(s);
  }
  auto array = RaidArray::create(RaidLevel::kRaid5, wrapped);
  ASSERT_TRUE(array.is_ok());
  ASSERT_TRUE((*array)->write(0, random_blocks(8, kBs)).is_ok());
  StatsDisk::Counters total;
  for (auto& s : stats) {
    const auto c = s->counters();
    total.reads += c.reads;
    total.writes += c.writes;
  }
  EXPECT_EQ(total.reads, 2u);   // old data + old parity
  EXPECT_EQ(total.writes, 2u);  // new data + new parity
}

TEST(RaidArrayTest, DegradedReadReconstructsLostBlock) {
  auto members = make_members(4);
  std::vector<std::shared_ptr<FaultyDisk>> faulty;
  std::vector<std::shared_ptr<BlockDevice>> wrapped;
  for (auto& m : members) {
    auto f = std::make_shared<FaultyDisk>(m, FaultyDisk::Config{});
    faulty.push_back(f);
    wrapped.push_back(f);
  }
  auto array = RaidArray::create(RaidLevel::kRaid5, wrapped);
  ASSERT_TRUE(array.is_ok());
  auto& raid = **array;

  std::vector<Bytes> written(raid.num_blocks());
  for (Lba lba = 0; lba < raid.num_blocks(); ++lba) {
    written[lba] = random_blocks(900 + lba, kBs);
    ASSERT_TRUE(raid.write(lba, written[lba]).is_ok());
  }

  faulty[1]->set_dead(true);  // lose member 1

  Bytes out(kBs);
  for (Lba lba = 0; lba < raid.num_blocks(); ++lba) {
    ASSERT_TRUE(raid.read(lba, out).is_ok()) << "lba " << lba;
    EXPECT_EQ(out, written[lba]) << "lba " << lba;
  }
}

TEST(RaidArrayTest, RebuildRestoresReplacedMember) {
  auto members = make_members(4);
  auto array = RaidArray::create(RaidLevel::kRaid5, members);
  ASSERT_TRUE(array.is_ok());
  auto& raid = **array;
  for (Lba lba = 0; lba < raid.num_blocks(); ++lba) {
    ASSERT_TRUE(raid.write(lba, random_blocks(800 + lba, kBs)).is_ok());
  }
  // Remember member 2's contents, wipe it, rebuild, compare.
  Bytes expected(kMemberBlocks * kBs);
  ASSERT_TRUE(members[2]->read(0, expected).is_ok());
  Bytes zeros(kMemberBlocks * kBs, 0);
  ASSERT_TRUE(members[2]->write(0, zeros).is_ok());
  ASSERT_TRUE(raid.rebuild_member(2).is_ok());
  Bytes rebuilt(kMemberBlocks * kBs);
  ASSERT_TRUE(members[2]->read(0, rebuilt).is_ok());
  EXPECT_EQ(rebuilt, expected);
  auto bad = raid.scrub();
  ASSERT_TRUE(bad.is_ok());
  EXPECT_EQ(*bad, 0u);
}

TEST(RaidArrayTest, RebuildRejectsRaid0AndBadMember) {
  auto r0 = RaidArray::create(RaidLevel::kRaid0, make_members(2));
  ASSERT_TRUE(r0.is_ok());
  EXPECT_EQ((*r0)->rebuild_member(0).code(), ErrorCode::kFailedPrecondition);
  auto r5 = RaidArray::create(RaidLevel::kRaid5, make_members(3));
  ASSERT_TRUE(r5.is_ok());
  EXPECT_EQ((*r5)->rebuild_member(9).code(), ErrorCode::kInvalidArgument);
}

TEST(RaidArrayTest, DescribeNamesLevel) {
  auto r4 = RaidArray::create(RaidLevel::kRaid4, make_members(3));
  ASSERT_TRUE(r4.is_ok());
  EXPECT_NE((*r4)->describe().find("raid4"), std::string::npos);
}

}  // namespace
}  // namespace prins
