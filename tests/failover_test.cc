// Failover: epoch-fenced replica promotion under deterministic crashes.
//
// Each case hard-kills the primary at a different point — between writes,
// mid-local-I/O (FaultyDisk crash-stop), or mid-frame (FaultyTransport
// hard-cut) — promotes the most-advanced replica, and checks the verdict
// the crash harness computes: durability of acked writes, no torn blocks,
// survivor convergence, and stale-epoch fencing of the old primary.

#include <gtest/gtest.h>

#include "sim/crash_harness.h"

namespace prins {
namespace {

struct SweepPoint {
  CrashScenario::Kill kill;
  std::uint64_t kill_point;
  std::uint64_t seed;
};

class FailoverSweep : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(FailoverSweep, AckedWritesSurvivePromotionAndZombieIsFenced) {
  const SweepPoint& p = GetParam();
  CrashScenario scenario;
  scenario.kill = p.kill;
  scenario.kill_point = p.kill_point;
  scenario.seed = p.seed;
  auto verdict = run_crash_scenario(scenario);
  ASSERT_TRUE(verdict.is_ok()) << verdict.status().to_string();

  EXPECT_TRUE(verdict->durable) << verdict->detail;
  EXPECT_TRUE(verdict->exact) << verdict->detail;
  EXPECT_TRUE(verdict->survivor_consistent) << verdict->detail;
  EXPECT_TRUE(verdict->zombie_fenced) << verdict->detail;
  EXPECT_TRUE(verdict->ok()) << verdict->detail;

  // Promotion always mints a fresh fencing epoch above the legacy 0.
  EXPECT_GE(verdict->promoted_epoch, 1u);
  // The fence is enforced with typed NAKs, not silent drops.
  EXPECT_GE(verdict->zombie_naks, 1u);
  // The journal can never ack more than was submitted.
  EXPECT_LE(verdict->acked_watermark, verdict->writes_submitted + 1);
}

// >= 8 distinct kill points across all three crash layers, two seeds for
// the mid-stream layers.  kill_point units differ per layer: writes for
// kBetweenWrites, device I/Os for kLocalDiskCrash (each PRINS write costs
// a read-old + write-new locally), frames for kMidFrame.
INSTANTIATE_TEST_SUITE_P(
    KillPoints, FailoverSweep,
    ::testing::Values(
        // Clean process loss, from "nothing ever written" to mid-stream.
        SweepPoint{CrashScenario::Kill::kBetweenWrites, 0, 1},
        SweepPoint{CrashScenario::Kill::kBetweenWrites, 1, 2},
        SweepPoint{CrashScenario::Kill::kBetweenWrites, 5, 3},
        SweepPoint{CrashScenario::Kill::kBetweenWrites, 17, 4},
        // Local volume crash-stops with a torn in-flight op.
        SweepPoint{CrashScenario::Kill::kLocalDiskCrash, 3, 5},
        SweepPoint{CrashScenario::Kill::kLocalDiskCrash, 11, 6},
        SweepPoint{CrashScenario::Kill::kLocalDiskCrash, 26, 7},
        // Replication link hard-cuts mid-frame.
        SweepPoint{CrashScenario::Kill::kMidFrame, 2, 8},
        SweepPoint{CrashScenario::Kill::kMidFrame, 9, 9},
        SweepPoint{CrashScenario::Kill::kMidFrame, 23, 10}),
    [](const ::testing::TestParamInfo<SweepPoint>& info) {
      const char* kind =
          info.param.kill == CrashScenario::Kill::kBetweenWrites
              ? "BetweenWrites"
              : (info.param.kill == CrashScenario::Kill::kLocalDiskCrash
                     ? "DiskCrash"
                     : "MidFrame");
      return std::string(kind) + "At" +
             std::to_string(info.param.kill_point) + "Seed" +
             std::to_string(info.param.seed);
    });

TEST(FailoverTest, DeterministicAcrossRuns) {
  // Local-disk crashes fail the write() call synchronously, so the whole
  // workload replays bit-for-bit.  (Mid-frame cuts are noticed by sender
  // threads asynchronously; there only the invariants are deterministic,
  // not the exact write count.)
  CrashScenario scenario;
  scenario.kill = CrashScenario::Kill::kLocalDiskCrash;
  scenario.kill_point = 7;
  scenario.seed = 42;
  auto a = run_crash_scenario(scenario);
  auto b = run_crash_scenario(scenario);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  EXPECT_EQ(a->writes_submitted, b->writes_submitted);
  EXPECT_EQ(a->promoted_epoch, b->promoted_epoch);
  EXPECT_TRUE(a->ok()) << a->detail;
  EXPECT_TRUE(b->ok()) << b->detail;
}

TEST(FailoverTest, TraditionalPolicySurvivesCrashToo) {
  CrashScenario scenario;
  scenario.kill = CrashScenario::Kill::kBetweenWrites;
  scenario.kill_point = 9;
  scenario.seed = 11;
  scenario.policy = ReplicationPolicy::kTraditional;
  auto verdict = run_crash_scenario(scenario);
  ASSERT_TRUE(verdict.is_ok()) << verdict.status().to_string();
  EXPECT_TRUE(verdict->ok()) << verdict->detail;
}

TEST(FailoverTest, RejectsVacuousScenarios) {
  CrashScenario scenario;
  scenario.hot_lbas = 0;
  EXPECT_FALSE(run_crash_scenario(scenario).is_ok());
  scenario.hot_lbas = 8;
  scenario.post_failover_writes = 0;
  EXPECT_FALSE(run_crash_scenario(scenario).is_ok());
}

}  // namespace
}  // namespace prins
