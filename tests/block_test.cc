// Tests for the block-device layer: MemDisk, FileDisk, decorators.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "block/faulty_disk.h"
#include "block/file_disk.h"
#include "block/mem_disk.h"
#include "block/snapshot_disk.h"
#include "block/stats_disk.h"
#include "common/rng.h"

namespace prins {
namespace {

Bytes random_block(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  Bytes b(n);
  rng.fill(b);
  return b;
}

TEST(MemDiskTest, ReadsBackWrites) {
  MemDisk disk(64, 512);
  EXPECT_EQ(disk.block_size(), 512u);
  EXPECT_EQ(disk.num_blocks(), 64u);
  EXPECT_EQ(disk.capacity_bytes(), 64u * 512u);

  const Bytes data = random_block(1, 512);
  ASSERT_TRUE(disk.write(10, data).is_ok());
  Bytes out(512);
  ASSERT_TRUE(disk.read(10, out).is_ok());
  EXPECT_EQ(out, data);
}

TEST(MemDiskTest, FreshDiskIsZeroed) {
  MemDisk disk(4, 256);
  Bytes out(256, 0xFF);
  ASSERT_TRUE(disk.read(3, out).is_ok());
  EXPECT_TRUE(all_zero(out));
}

TEST(MemDiskTest, MultiBlockIo) {
  MemDisk disk(16, 128);
  const Bytes data = random_block(2, 4 * 128);
  ASSERT_TRUE(disk.write(4, data).is_ok());
  Bytes out(4 * 128);
  ASSERT_TRUE(disk.read(4, out).is_ok());
  EXPECT_EQ(out, data);
  // And individual blocks line up with the bulk write.
  Bytes one(128);
  ASSERT_TRUE(disk.read(5, one).is_ok());
  EXPECT_EQ(one, to_bytes(ByteSpan(data).subspan(128, 128)));
}

TEST(MemDiskTest, RejectsBadGeometryIo) {
  MemDisk disk(8, 512);
  Bytes small(100);
  EXPECT_EQ(disk.read(0, small).code(), ErrorCode::kInvalidArgument);
  Bytes empty;
  EXPECT_EQ(disk.write(0, empty).code(), ErrorCode::kInvalidArgument);
  Bytes block(512);
  EXPECT_EQ(disk.read(8, block).code(), ErrorCode::kOutOfRange);
  Bytes two(1024);
  EXPECT_EQ(disk.write(7, two).code(), ErrorCode::kOutOfRange);
}

TEST(MemDiskTest, LastBlockIsWritable) {
  MemDisk disk(8, 512);
  const Bytes data = random_block(3, 512);
  EXPECT_TRUE(disk.write(7, data).is_ok());
}

// ---- FileDisk ----------------------------------------------------------------

class FileDiskTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       ("prins_filedisk_" + std::to_string(::getpid()) + "_" +
                        std::to_string(counter_++)))
                          .string();
  static int counter_;

  void TearDown() override { std::remove(path_.c_str()); }
};
int FileDiskTest::counter_ = 0;

TEST_F(FileDiskTest, PersistsAcrossReopen) {
  const Bytes data = random_block(4, 4096);
  {
    auto disk = FileDisk::open(path_, 32, 4096);
    ASSERT_TRUE(disk.is_ok()) << disk.status().to_string();
    ASSERT_TRUE((*disk)->write(5, data).is_ok());
    ASSERT_TRUE((*disk)->flush().is_ok());
  }
  {
    auto disk = FileDisk::open(path_, 32, 4096);
    ASSERT_TRUE(disk.is_ok());
    Bytes out(4096);
    ASSERT_TRUE((*disk)->read(5, out).is_ok());
    EXPECT_EQ(out, data);
  }
}

TEST_F(FileDiskTest, FreshFileReadsZero) {
  auto disk = FileDisk::open(path_, 8, 512);
  ASSERT_TRUE(disk.is_ok());
  Bytes out(512, 0xEE);
  ASSERT_TRUE((*disk)->read(7, out).is_ok());
  EXPECT_TRUE(all_zero(out));
}

TEST_F(FileDiskTest, RejectsZeroGeometry) {
  EXPECT_FALSE(FileDisk::open(path_, 0, 512).is_ok());
  EXPECT_FALSE(FileDisk::open(path_, 8, 0).is_ok());
}

TEST_F(FileDiskTest, BoundsChecked) {
  auto disk = FileDisk::open(path_, 4, 512);
  ASSERT_TRUE(disk.is_ok());
  Bytes block(512);
  EXPECT_EQ((*disk)->read(4, block).code(), ErrorCode::kOutOfRange);
}

// ---- FaultyDisk ----------------------------------------------------------------

TEST(FaultyDiskTest, PassesThroughWhenHealthy) {
  auto inner = std::make_shared<MemDisk>(8, 256);
  FaultyDisk disk(inner, {});
  const Bytes data = random_block(5, 256);
  ASSERT_TRUE(disk.write(2, data).is_ok());
  Bytes out(256);
  ASSERT_TRUE(disk.read(2, out).is_ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(disk.ops_seen(), 2u);
}

TEST(FaultyDiskTest, InjectsReadErrorsAtConfiguredRate) {
  auto inner = std::make_shared<MemDisk>(8, 256);
  FaultyDisk::Config config;
  config.read_error_p = 1.0;
  FaultyDisk disk(inner, config);
  Bytes out(256);
  EXPECT_EQ(disk.read(0, out).code(), ErrorCode::kIoError);
  EXPECT_TRUE(disk.write(0, out).is_ok());  // writes unaffected
}

TEST(FaultyDiskTest, FailAfterKillsTheDisk) {
  auto inner = std::make_shared<MemDisk>(8, 256);
  FaultyDisk disk(inner, {});
  disk.fail_after(2);
  Bytes block(256);
  EXPECT_TRUE(disk.read(0, block).is_ok());
  EXPECT_FALSE(disk.read(0, block).is_ok());  // second op trips the wire
  EXPECT_TRUE(disk.is_dead());
  EXPECT_FALSE(disk.write(0, block).is_ok());
  EXPECT_FALSE(disk.flush().is_ok());
  disk.set_dead(false);
  EXPECT_TRUE(disk.read(0, block).is_ok());
}

TEST(FaultyDiskTest, CorruptionFlipsBytes) {
  auto inner = std::make_shared<MemDisk>(8, 256);
  const Bytes data = random_block(6, 256);
  ASSERT_TRUE(inner->write(0, data).is_ok());
  FaultyDisk::Config config;
  config.corrupt_p = 1.0;
  FaultyDisk disk(inner, config);
  Bytes out(256);
  ASSERT_TRUE(disk.read(0, out).is_ok());
  EXPECT_NE(out, data);  // silently corrupted
}

TEST(FaultyDiskTest, PersistentCorruptionLandsOnTheInnerDevice) {
  auto inner = std::make_shared<MemDisk>(8, 256);
  const Bytes data = random_block(9, 256);
  ASSERT_TRUE(inner->write(0, data).is_ok());
  FaultyDisk::Config config;
  config.corrupt_p = 1.0;
  config.corrupt_persistent = true;
  FaultyDisk disk(inner, config);
  Bytes out(256);
  ASSERT_TRUE(disk.read(0, out).is_ok());
  EXPECT_NE(out, data);
  // The flip was written back: the inner device is corrupt at rest.
  Bytes stored(256);
  ASSERT_TRUE(inner->read(0, stored).is_ok());
  EXPECT_EQ(stored, out);
  EXPECT_NE(stored, data);
}

TEST(FaultyDiskTest, TornWritePersistsOnlyAPrefix) {
  auto inner = std::make_shared<MemDisk>(8, 256);
  FaultyDisk::Config config;
  config.torn_write_p = 1.0;
  FaultyDisk disk(inner, config);
  const Bytes data(256, 0xAB);  // inner starts zeroed
  ASSERT_TRUE(disk.write(3, data).is_ok());  // the disk lies: reports success
  EXPECT_EQ(disk.torn_writes(), 1u);
  Bytes out(256);
  ASSERT_TRUE(inner->read(3, out).is_ok());
  // Some non-empty strict prefix landed; the rest still holds old bytes.
  std::size_t kept = 0;
  while (kept < out.size() && out[kept] == 0xAB) ++kept;
  EXPECT_GT(kept, 0u);
  EXPECT_LT(kept, out.size());
  for (std::size_t i = kept; i < out.size(); ++i) EXPECT_EQ(out[i], 0u);
}

TEST(FaultyDiskTest, CrashAfterTearsTheFatalWriteThenDies) {
  auto inner = std::make_shared<MemDisk>(8, 256);
  FaultyDisk disk(inner, {});
  const Bytes data(256, 0xCD);
  disk.crash_after(2);
  Bytes out(256);
  ASSERT_TRUE(disk.read(0, out).is_ok());                     // op 1
  EXPECT_EQ(disk.write(5, data).code(), ErrorCode::kIoError);  // op 2: crash
  EXPECT_TRUE(disk.is_dead());
  EXPECT_EQ(disk.torn_writes(), 1u);
  // A strict prefix of the dying write persisted.
  ASSERT_TRUE(inner->read(5, out).is_ok());
  std::size_t kept = 0;
  while (kept < out.size() && out[kept] == 0xCD) ++kept;
  EXPECT_GT(kept, 0u);
  EXPECT_LT(kept, out.size());
  // "Restart" revives the device with the torn state intact.
  disk.set_dead(false);
  Bytes again(256);
  ASSERT_TRUE(disk.read(5, again).is_ok());
  EXPECT_EQ(again, out);
}

TEST(FaultyDiskTest, MarkBadFailsReadsUntilRewritten) {
  auto inner = std::make_shared<MemDisk>(8, 256);
  FaultyDisk disk(inner, {});
  disk.mark_bad(4);
  Bytes block(256);
  EXPECT_EQ(disk.read(4, block).code(), ErrorCode::kDataCorruption);
  // Multi-block reads covering the bad block fail too.
  Bytes two(512);
  EXPECT_EQ(disk.read(3, two).code(), ErrorCode::kDataCorruption);
  EXPECT_TRUE(disk.read(5, block).is_ok());  // neighbours unaffected
  ASSERT_TRUE(disk.write(4, Bytes(256, 0x11)).is_ok());
  EXPECT_TRUE(disk.read(4, block).is_ok());  // rewrite clears the mark
}

TEST(FaultyDiskTest, CorruptBlockIsDeterministicAndSilent) {
  auto inner = std::make_shared<MemDisk>(8, 256);
  const Bytes data = random_block(10, 256);
  ASSERT_TRUE(inner->write(2, data).is_ok());
  FaultyDisk disk(inner, {});
  ASSERT_TRUE(disk.corrupt_block(2, 17).is_ok());
  Bytes out(256);
  ASSERT_TRUE(disk.read(2, out).is_ok());  // silent: the read succeeds
  Bytes expect = data;
  expect[17] ^= 0xFF;
  EXPECT_EQ(out, expect);
  EXPECT_EQ(disk.corrupt_block(9, 0).code(), ErrorCode::kOutOfRange);
}

// ---- StatsDisk ----------------------------------------------------------------

TEST(StatsDiskTest, CountsOpsAndBytes) {
  auto inner = std::make_shared<MemDisk>(8, 512);
  StatsDisk disk(inner);
  Bytes two(1024);
  ASSERT_TRUE(disk.write(0, two).is_ok());
  Bytes one(512);
  ASSERT_TRUE(disk.read(1, one).is_ok());
  ASSERT_TRUE(disk.flush().is_ok());
  const auto c = disk.counters();
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.bytes_written, 1024u);
  EXPECT_EQ(c.reads, 1u);
  EXPECT_EQ(c.bytes_read, 512u);
  EXPECT_EQ(c.flushes, 1u);
  disk.reset();
  EXPECT_EQ(disk.counters().writes, 0u);
}

TEST(StatsDiskTest, FailedOpsNotCounted) {
  auto inner = std::make_shared<MemDisk>(8, 512);
  StatsDisk disk(inner);
  Bytes block(512);
  EXPECT_FALSE(disk.read(100, block).is_ok());
  EXPECT_EQ(disk.counters().reads, 0u);
}

// ---- SnapshotDisk ----------------------------------------------------------------

TEST(SnapshotDiskTest, ReadOriginalSeesPreSnapshotContents) {
  auto inner = std::make_shared<MemDisk>(8, 256);
  const Bytes v0 = random_block(7, 256);
  ASSERT_TRUE(inner->write(3, v0).is_ok());

  SnapshotDisk snap(inner);
  const Bytes v1 = random_block(8, 256);
  ASSERT_TRUE(snap.write(3, v1).is_ok());

  Bytes now(256), then(256);
  ASSERT_TRUE(snap.read(3, now).is_ok());
  ASSERT_TRUE(snap.read_original(3, then).is_ok());
  EXPECT_EQ(now, v1);
  EXPECT_EQ(then, v0);
  EXPECT_EQ(snap.dirty_blocks(), 1u);
}

TEST(SnapshotDiskTest, RollbackRestoresEverything) {
  auto inner = std::make_shared<MemDisk>(8, 256);
  Bytes originals[8];
  for (Lba i = 0; i < 8; ++i) {
    originals[i] = random_block(100 + i, 256);
    ASSERT_TRUE(inner->write(i, originals[i]).is_ok());
  }
  SnapshotDisk snap(inner);
  for (Lba i = 0; i < 8; i += 2) {
    ASSERT_TRUE(snap.write(i, random_block(200 + i, 256)).is_ok());
  }
  EXPECT_EQ(snap.dirty_blocks(), 4u);
  ASSERT_TRUE(snap.rollback().is_ok());
  EXPECT_EQ(snap.dirty_blocks(), 0u);
  Bytes out(256);
  for (Lba i = 0; i < 8; ++i) {
    ASSERT_TRUE(inner->read(i, out).is_ok());
    EXPECT_EQ(out, originals[i]) << "block " << i;
  }
}

TEST(SnapshotDiskTest, UndoKeepsFirstVersionOnly) {
  auto inner = std::make_shared<MemDisk>(4, 256);
  const Bytes v0 = random_block(9, 256);
  ASSERT_TRUE(inner->write(0, v0).is_ok());
  SnapshotDisk snap(inner);
  ASSERT_TRUE(snap.write(0, random_block(10, 256)).is_ok());
  ASSERT_TRUE(snap.write(0, random_block(11, 256)).is_ok());
  Bytes then(256);
  ASSERT_TRUE(snap.read_original(0, then).is_ok());
  EXPECT_EQ(then, v0);
}

}  // namespace
}  // namespace prins
