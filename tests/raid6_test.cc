// Tests for GF(2^8) arithmetic and the dual-parity RAID-6 array:
// field axioms, syndrome algebra, and exhaustive two-failure recovery.
#include <gtest/gtest.h>

#include "block/faulty_disk.h"
#include "block/mem_disk.h"
#include "common/rng.h"
#include "parity/gf256.h"
#include "parity/xor.h"
#include "raid/raid6_array.h"

namespace prins {
namespace {

// ---- GF(2^8) ----------------------------------------------------------------

TEST(Gf256Test, MultiplicationBasics) {
  EXPECT_EQ(gf_mul(0, 77), 0);
  EXPECT_EQ(gf_mul(77, 0), 0);
  EXPECT_EQ(gf_mul(1, 77), 77);
  EXPECT_EQ(gf_mul(2, 0x80), 0x1D);  // x^8 reduces by the 0x11D polynomial
}

TEST(Gf256Test, FieldAxiomsExhaustiveOverSamples) {
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(gf_mul(a, b), gf_mul(b, a));
    EXPECT_EQ(gf_mul(a, gf_mul(b, c)), gf_mul(gf_mul(a, b), c));
    // Distributivity over XOR (the field's addition).
    EXPECT_EQ(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (int v = 1; v < 256; ++v) {
    const auto a = static_cast<std::uint8_t>(v);
    EXPECT_EQ(gf_mul(a, gf_inv(a)), 1) << v;
    EXPECT_EQ(gf_div(gf_mul(a, 0x53), a), 0x53) << v;
  }
}

TEST(Gf256Test, GeneratorHasFullOrder) {
  // g = 2 generates the multiplicative group: g^i distinct for i in 0..254.
  std::set<std::uint8_t> seen;
  for (unsigned i = 0; i < 255; ++i) seen.insert(gf_pow2(i));
  EXPECT_EQ(seen.size(), 255u);
  EXPECT_EQ(gf_pow2(0), 1);
  EXPECT_EQ(gf_pow2(255), 1);  // wraps
}

TEST(Gf256Test, MulXorIntoMatchesScalarLoop) {
  Rng rng(2);
  Bytes dst(512), src(512);
  rng.fill(dst);
  rng.fill(src);
  Bytes expected = dst;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    expected[i] ^= gf_mul(0x37, src[i]);
  }
  gf_mul_xor_into(dst, 0x37, src);
  EXPECT_EQ(dst, expected);
}

TEST(Gf256Test, ScaleAndUnscaleRoundTrip) {
  Rng rng(3);
  Bytes data(256);
  rng.fill(data);
  Bytes copy = data;
  gf_scale(copy, 0x9C);
  gf_scale(copy, gf_inv(0x9C));
  EXPECT_EQ(copy, data);
}

// ---- RAID-6 -------------------------------------------------------------------

constexpr std::uint32_t kBs = 512;
constexpr std::uint64_t kMemberBlocks = 24;

struct Rig {
  std::vector<std::shared_ptr<MemDisk>> disks;
  std::vector<std::shared_ptr<FaultyDisk>> faulty;
  std::unique_ptr<Raid6Array> array;

  explicit Rig(unsigned members) {
    std::vector<std::shared_ptr<BlockDevice>> wrapped;
    for (unsigned i = 0; i < members; ++i) {
      disks.push_back(std::make_shared<MemDisk>(kMemberBlocks, kBs));
      faulty.push_back(
          std::make_shared<FaultyDisk>(disks.back(), FaultyDisk::Config{}));
      wrapped.push_back(faulty.back());
    }
    auto a = Raid6Array::create(std::move(wrapped));
    EXPECT_TRUE(a.is_ok());
    array = std::move(*a);
  }
};

Bytes random_block(std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(kBs);
  rng.fill(b);
  return b;
}

TEST(Raid6Test, CreateValidates) {
  std::vector<std::shared_ptr<BlockDevice>> three;
  for (int i = 0; i < 3; ++i) {
    three.push_back(std::make_shared<MemDisk>(8, kBs));
  }
  EXPECT_FALSE(Raid6Array::create(std::move(three)).is_ok());
}

TEST(Raid6Test, CapacityExcludesTwoParityMembers) {
  Rig rig(6);
  EXPECT_EQ(rig.array->num_blocks(), kMemberBlocks * 4);
  EXPECT_EQ(rig.array->data_disks(), 4u);
}

TEST(Raid6Test, ParityRotates) {
  Rig rig(5);
  std::set<unsigned> p_disks, q_disks;
  for (std::uint64_t s = 0; s < 5; ++s) {
    const unsigned p = rig.array->p_disk_of(s);
    const unsigned q = rig.array->q_disk_of(s);
    EXPECT_NE(p, q);
    p_disks.insert(p);
    q_disks.insert(q);
  }
  EXPECT_EQ(p_disks.size(), 5u);  // parity visits every member
  EXPECT_EQ(q_disks.size(), 5u);
}

class Raid6Members : public ::testing::TestWithParam<unsigned> {};

TEST_P(Raid6Members, ReadBackAndScrubClean) {
  Rig rig(GetParam());
  std::vector<Bytes> written(rig.array->num_blocks());
  for (Lba lba = 0; lba < rig.array->num_blocks(); ++lba) {
    written[lba] = random_block(100 + lba);
    ASSERT_TRUE(rig.array->write(lba, written[lba]).is_ok());
  }
  Bytes out(kBs);
  for (Lba lba = 0; lba < rig.array->num_blocks(); ++lba) {
    ASSERT_TRUE(rig.array->read(lba, out).is_ok());
    ASSERT_EQ(out, written[lba]) << "lba " << lba;
  }
  auto bad = rig.array->scrub();
  ASSERT_TRUE(bad.is_ok());
  EXPECT_EQ(*bad, 0u);
}

TEST_P(Raid6Members, SurvivesEverySingleFailure) {
  const unsigned members = GetParam();
  for (unsigned dead = 0; dead < members; ++dead) {
    Rig rig(members);
    std::vector<Bytes> written(rig.array->num_blocks());
    for (Lba lba = 0; lba < rig.array->num_blocks(); ++lba) {
      written[lba] = random_block(1000 * dead + lba);
      ASSERT_TRUE(rig.array->write(lba, written[lba]).is_ok());
    }
    rig.faulty[dead]->set_dead(true);
    Bytes out(kBs);
    for (Lba lba = 0; lba < rig.array->num_blocks(); ++lba) {
      ASSERT_TRUE(rig.array->read(lba, out).is_ok())
          << "dead=" << dead << " lba=" << lba;
      ASSERT_EQ(out, written[lba]) << "dead=" << dead << " lba=" << lba;
    }
  }
}

TEST_P(Raid6Members, SurvivesEveryDoubleFailure) {
  // The RAID-6 headline: exhaustive over all C(members, 2) failure pairs.
  const unsigned members = GetParam();
  for (unsigned x = 0; x < members; ++x) {
    for (unsigned y = x + 1; y < members; ++y) {
      Rig rig(members);
      std::vector<Bytes> written(rig.array->num_blocks());
      for (Lba lba = 0; lba < rig.array->num_blocks(); ++lba) {
        written[lba] = random_block(10000 * x + 100 * y + lba);
        ASSERT_TRUE(rig.array->write(lba, written[lba]).is_ok());
      }
      rig.faulty[x]->set_dead(true);
      rig.faulty[y]->set_dead(true);
      Bytes out(kBs);
      for (Lba lba = 0; lba < rig.array->num_blocks(); ++lba) {
        ASSERT_TRUE(rig.array->read(lba, out).is_ok())
            << "dead={" << x << "," << y << "} lba=" << lba;
        ASSERT_EQ(out, written[lba])
            << "dead={" << x << "," << y << "} lba=" << lba;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MemberCounts, Raid6Members,
                         ::testing::Values(4u, 5u, 7u));

TEST(Raid6Test, RebuildTwoMembersRestoresScrub) {
  Rig rig(5);
  for (Lba lba = 0; lba < rig.array->num_blocks(); ++lba) {
    ASSERT_TRUE(rig.array->write(lba, random_block(lba)).is_ok());
  }
  // Remember, wipe two members, rebuild, verify.
  Bytes expect1(kMemberBlocks * kBs), expect3(kMemberBlocks * kBs);
  ASSERT_TRUE(rig.disks[1]->read(0, expect1).is_ok());
  ASSERT_TRUE(rig.disks[3]->read(0, expect3).is_ok());
  Bytes zeros(kMemberBlocks * kBs, 0);
  ASSERT_TRUE(rig.disks[1]->write(0, zeros).is_ok());
  ASSERT_TRUE(rig.disks[3]->write(0, zeros).is_ok());
  ASSERT_TRUE(rig.array->rebuild_members({1, 3}).is_ok());
  Bytes got(kMemberBlocks * kBs);
  ASSERT_TRUE(rig.disks[1]->read(0, got).is_ok());
  EXPECT_EQ(got, expect1);
  ASSERT_TRUE(rig.disks[3]->read(0, got).is_ok());
  EXPECT_EQ(got, expect3);
  auto bad = rig.array->scrub();
  ASSERT_TRUE(bad.is_ok());
  EXPECT_EQ(*bad, 0u);
}

TEST(Raid6Test, RebuildValidatesArguments) {
  Rig rig(4);
  EXPECT_FALSE(rig.array->rebuild_members({}).is_ok());
  EXPECT_FALSE(rig.array->rebuild_members({0, 1, 2}).is_ok());
  EXPECT_FALSE(rig.array->rebuild_members({9}).is_ok());
}

TEST(Raid6Test, ThreeFailuresAreUnrecoverable) {
  Rig rig(5);
  ASSERT_TRUE(rig.array->write(0, random_block(1)).is_ok());
  rig.faulty[0]->set_dead(true);
  rig.faulty[1]->set_dead(true);
  rig.faulty[2]->set_dead(true);
  Bytes out(kBs);
  // Block 0's data may live on a dead or live member depending on layout;
  // find an lba whose data member is dead to force reconstruction.
  bool saw_failure = false;
  for (Lba lba = 0; lba < rig.array->num_blocks(); ++lba) {
    if (!rig.array->read(lba, out).is_ok()) saw_failure = true;
  }
  EXPECT_TRUE(saw_failure);
}

TEST(Raid6Test, ObserverDeliversWriteParity) {
  Rig rig(5);
  const Bytes before = random_block(7);
  ASSERT_TRUE(rig.array->write(3, before).is_ok());
  Bytes observed;
  std::size_t observed_dirty = 0;
  rig.array->set_parity_observer([&](Lba, ByteSpan delta, std::size_t dirty) {
    observed = to_bytes(delta);
    observed_dirty = dirty;
  });
  const Bytes after = random_block(8);
  ASSERT_TRUE(rig.array->write(3, after).is_ok());
  EXPECT_EQ(observed, parity_delta(after, before));
  EXPECT_EQ(observed_dirty, count_nonzero(observed));
}

TEST(Raid6Test, ScrubDetectsTampering) {
  Rig rig(4);
  ASSERT_TRUE(rig.array->write(0, random_block(9)).is_ok());
  Bytes block(kBs);
  ASSERT_TRUE(rig.disks[2]->read(0, block).is_ok());
  block[5] ^= 0x01;
  ASSERT_TRUE(rig.disks[2]->write(0, block).is_ok());
  auto bad = rig.array->scrub();
  ASSERT_TRUE(bad.is_ok());
  EXPECT_EQ(*bad, 1u);
}

}  // namespace
}  // namespace prins
