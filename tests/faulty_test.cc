// Tests for the fault-injecting transport decorator and the timed receive
// (recv_for) support it leans on.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/faulty.h"
#include "net/inproc.h"
#include "net/latent.h"

namespace prins {
namespace {

using std::chrono::milliseconds;

Bytes message(std::string_view s) { return to_bytes(as_bytes(s)); }

FaultConfig only(double FaultConfig::*knob, double p, std::uint64_t seed = 7) {
  FaultConfig config;
  config.*knob = p;
  config.seed = seed;
  return config;
}

TEST(FaultyTransportTest, PassesThroughWhenFaultFree) {
  auto [a, b] = make_inproc_pair();
  FaultyTransport faulty(std::move(a), FaultConfig{});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(faulty.send(message("m" + std::to_string(i))).is_ok());
  }
  for (int i = 0; i < 10; ++i) {
    auto got = b->recv();
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(*got, message("m" + std::to_string(i)));
  }
  const FaultStats stats = faulty.stats();
  EXPECT_EQ(stats.sent, 10u);
  EXPECT_EQ(stats.delivered, 10u);
  EXPECT_EQ(stats.dropped + stats.corrupted + stats.duplicated, 0u);
}

TEST(FaultyTransportTest, DropsAreSilentSuccess) {
  auto [a, b] = make_inproc_pair();
  FaultyTransport faulty(std::move(a), only(&FaultConfig::drop_p, 1.0));
  ASSERT_TRUE(faulty.send(message("gone")).is_ok());  // sender sees success
  EXPECT_EQ(faulty.stats().dropped, 1u);
  EXPECT_EQ(faulty.stats().delivered, 0u);
  auto got = b->recv_for(milliseconds(20));
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kTimeout);
}

TEST(FaultyTransportTest, CorruptFlipsExactlyOneBit) {
  auto [a, b] = make_inproc_pair();
  FaultyTransport faulty(std::move(a), only(&FaultConfig::corrupt_p, 1.0));
  const Bytes original = message("a perfectly innocent payload");
  ASSERT_TRUE(faulty.send(original).is_ok());
  auto got = b->recv();
  ASSERT_TRUE(got.is_ok());
  ASSERT_EQ(got->size(), original.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    flipped_bits += __builtin_popcount(
        static_cast<unsigned>((*got)[i] ^ original[i]) & 0xFF);
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(faulty.stats().corrupted, 1u);
}

TEST(FaultyTransportTest, DuplicateDeliversTwice) {
  auto [a, b] = make_inproc_pair();
  FaultyTransport faulty(std::move(a), only(&FaultConfig::duplicate_p, 1.0));
  ASSERT_TRUE(faulty.send(message("twice")).is_ok());
  for (int i = 0; i < 2; ++i) {
    auto got = b->recv();
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(*got, message("twice"));
  }
  EXPECT_EQ(faulty.stats().duplicated, 1u);
  EXPECT_EQ(faulty.stats().delivered, 2u);
}

TEST(FaultyTransportTest, StallDelaysButDelivers) {
  auto [a, b] = make_inproc_pair();
  FaultConfig config;
  config.stall_p = 1.0;
  config.stall = milliseconds(20);
  FaultyTransport faulty(std::move(a), config);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(faulty.send(message("slow")).is_ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, milliseconds(15));
  auto got = b->recv();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, message("slow"));
  EXPECT_EQ(faulty.stats().stalled, 1u);
}

TEST(FaultyTransportTest, SameSeedSameFaultSchedule) {
  FaultConfig config;
  config.drop_p = 0.3;
  config.duplicate_p = 0.2;
  config.seed = 1234;
  std::vector<std::uint64_t> delivered_counts;
  for (int run = 0; run < 2; ++run) {
    auto [a, b] = make_inproc_pair();
    FaultyTransport faulty(std::move(a), config);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(faulty.send(message("x")).is_ok());
    }
    const FaultStats stats = faulty.stats();
    EXPECT_GT(stats.dropped, 0u);
    EXPECT_GT(stats.duplicated, 0u);
    delivered_counts.push_back(stats.delivered);
  }
  EXPECT_EQ(delivered_counts[0], delivered_counts[1]);
}

TEST(FaultyTransportTest, DisconnectAfterCutsTheLinkHard) {
  auto [a, b] = make_inproc_pair();
  FaultConfig config;
  config.disconnect_after = 3;
  FaultyTransport faulty(std::move(a), config);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(faulty.send(message("ok")).is_ok());
  }
  auto cut = faulty.send(message("dead"));
  ASSERT_FALSE(cut.is_ok());
  EXPECT_EQ(cut.code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(faulty.is_disconnected());
  // Everything after the cut fails the same way, including receives.
  EXPECT_EQ(faulty.send(message("still dead")).code(),
            ErrorCode::kUnavailable);
  EXPECT_EQ(faulty.recv_for(milliseconds(5)).status().code(),
            ErrorCode::kUnavailable);
  // The peer sees the closed channel once the in-flight backlog drains.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(b->recv().is_ok());
  EXPECT_EQ(b->recv().status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(faulty.stats().disconnects, 1u);
}

TEST(FaultyTransportTest, ReconnectWithRestoresTheLink) {
  auto [a, b] = make_inproc_pair();
  FaultyTransport faulty(std::move(a), FaultConfig{});
  faulty.set_disconnected(true);
  EXPECT_EQ(faulty.send(message("x")).code(), ErrorCode::kUnavailable);

  auto [a2, b2] = make_inproc_pair();
  faulty.reconnect_with(std::move(a2));
  EXPECT_FALSE(faulty.is_disconnected());
  ASSERT_TRUE(faulty.send(message("back")).is_ok());
  auto got = b2->recv();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, message("back"));
}

TEST(FaultyListenerTest, WrapsEveryAcceptedConnection) {
  InprocNetwork network;
  auto inner = network.listen("addr");
  ASSERT_TRUE(inner.is_ok());
  FaultConfig config;
  config.drop_p = 1.0;  // the server side eats every reply
  FaultyListener listener(std::move(*inner), config);

  std::unique_ptr<Transport> server_end;
  std::thread accepter([&] {
    auto conn = listener.accept();
    ASSERT_TRUE(conn.is_ok());
    server_end = std::move(*conn);
  });
  auto client = network.connect("addr");
  ASSERT_TRUE(client.is_ok());
  accepter.join();

  // Client -> server passes (faults ride the wrapped end's send path)...
  ASSERT_TRUE((*client)->send(message("ping")).is_ok());
  auto got = server_end->recv();
  ASSERT_TRUE(got.is_ok());
  // ...but the server's reply is dropped on the floor.
  ASSERT_TRUE(server_end->send(message("pong")).is_ok());
  auto reply = (*client)->recv_for(milliseconds(20));
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kTimeout);
  listener.close();
}

TEST(RecvForTest, InprocTimesOutThenDelivers) {
  auto [a, b] = make_inproc_pair();
  auto nothing = b->recv_for(milliseconds(10));
  ASSERT_FALSE(nothing.is_ok());
  EXPECT_EQ(nothing.status().code(), ErrorCode::kTimeout);
  ASSERT_TRUE(a->send(message("late")).is_ok());
  auto got = b->recv_for(milliseconds(100));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, message("late"));
}

TEST(RecvForTest, LatentRespectsPropagationDelay) {
  auto [a, b] = make_latent_pair(std::chrono::microseconds(20000));
  ASSERT_TRUE(a->send(message("in flight")).is_ok());
  // The message exists but hasn't arrived yet: a short wait must time out
  // rather than deliver early.
  auto early = b->recv_for(milliseconds(2));
  ASSERT_FALSE(early.is_ok());
  EXPECT_EQ(early.status().code(), ErrorCode::kTimeout);
  auto got = b->recv_for(milliseconds(500));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, message("in flight"));
}

}  // namespace
}  // namespace prins
