// Tests for the mini-iSCSI layer: PDU wire format, CDBs, and full
// initiator/target sessions over in-proc and TCP transports.
#include <gtest/gtest.h>

#include <thread>

#include "block/mem_disk.h"
#include "common/rng.h"
#include "iscsi/initiator.h"
#include "iscsi/pdu.h"
#include "iscsi/scsi.h"
#include "iscsi/target.h"
#include "net/inproc.h"
#include "net/tcp.h"

namespace prins::iscsi {
namespace {

TEST(PduTest, EncodeDecodeRoundTrip) {
  Pdu pdu;
  pdu.opcode = Opcode::kScsiCommand;
  pdu.immediate = true;
  pdu.flags = kFlagFinal | kFlagWrite;
  pdu.byte2 = 0x12;
  pdu.byte3 = 0x34;
  pdu.lun = 0x0102030405060708ull;
  pdu.itt = 0xDEADBEEF;
  pdu.word5 = 1;
  pdu.word6 = 2;
  pdu.word7 = 3;
  pdu.word8 = 4;
  pdu.word9 = 5;
  pdu.word10 = 6;
  pdu.word11 = 7;
  pdu.data = {1, 2, 3, 4, 5};

  const Bytes wire = pdu.encode();
  EXPECT_EQ(wire.size() % 4, 0u);  // padded
  auto back = Pdu::decode(wire);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back->opcode, pdu.opcode);
  EXPECT_TRUE(back->immediate);
  EXPECT_EQ(back->flags, pdu.flags);
  EXPECT_EQ(back->byte2, 0x12);
  EXPECT_EQ(back->byte3, 0x34);
  EXPECT_EQ(back->lun, pdu.lun);
  EXPECT_EQ(back->itt, pdu.itt);
  EXPECT_EQ(back->word5, 1u);
  EXPECT_EQ(back->word11, 7u);
  EXPECT_EQ(back->data, pdu.data);
}

TEST(PduTest, AllOpcodesRoundTrip) {
  for (Opcode op : {Opcode::kNopOut, Opcode::kScsiCommand,
                    Opcode::kLoginRequest, Opcode::kDataOut,
                    Opcode::kLogoutRequest, Opcode::kNopIn,
                    Opcode::kScsiResponse, Opcode::kLoginResponse,
                    Opcode::kDataIn, Opcode::kLogoutResponse, Opcode::kR2t,
                    Opcode::kReject}) {
    Pdu pdu;
    pdu.opcode = op;
    auto back = Pdu::decode(pdu.encode());
    ASSERT_TRUE(back.is_ok()) << opcode_name(op);
    EXPECT_EQ(back->opcode, op);
    EXPECT_FALSE(opcode_name(op).empty());
  }
}

TEST(PduTest, RejectsTruncatedAndBogus) {
  EXPECT_FALSE(Pdu::decode(Bytes(10, 0)).is_ok());
  Bytes bogus(48, 0);
  bogus[0] = 0x3E;  // unknown opcode
  EXPECT_FALSE(Pdu::decode(bogus).is_ok());
  // Declared data longer than what follows the BHS.
  Pdu pdu;
  pdu.opcode = Opcode::kNopOut;
  pdu.data = Bytes(100, 1);
  Bytes wire = pdu.encode();
  wire.resize(60);
  EXPECT_FALSE(Pdu::decode(wire).is_ok());
}

TEST(PduTest, LoginKvRoundTrip) {
  const std::map<std::string, std::string> kv{
      {"InitiatorName", "iqn.test:init"},
      {"MaxRecvDataSegmentLength", "65536"},
      {"SessionType", "Normal"},
  };
  const auto back = decode_login_kv(encode_login_kv(kv));
  EXPECT_EQ(back, kv);
}

TEST(PduTest, LoginKvIgnoresGarbage) {
  const Bytes garbage =
      to_bytes(as_bytes(std::string_view("novalue\0=x\0ok=1\0", 16)));
  const auto kv = decode_login_kv(garbage);
  EXPECT_EQ(kv.size(), 2u);  // "=x" parses with empty key; novalue dropped
  EXPECT_EQ(kv.at("ok"), "1");
}

TEST(CdbTest, ReadWriteRoundTrip) {
  Byte buf[kCdbSize];
  make_read10(0x00ABCDEF, 77).encode(buf);
  auto read = Cdb::decode(ByteSpan(buf, kCdbSize));
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read->op, ScsiOp::kRead10);
  EXPECT_EQ(read->lba, 0x00ABCDEFu);
  EXPECT_EQ(read->blocks, 77u);

  make_write10(123, 456).encode(buf);
  auto write = Cdb::decode(ByteSpan(buf, kCdbSize));
  ASSERT_TRUE(write.is_ok());
  EXPECT_EQ(write->op, ScsiOp::kWrite10);
  EXPECT_EQ(write->lba, 123u);
  EXPECT_EQ(write->blocks, 456u);
}

TEST(CdbTest, UnsupportedOpcodeRejected) {
  Byte buf[kCdbSize] = {0xFF};
  EXPECT_FALSE(Cdb::decode(ByteSpan(buf, kCdbSize)).is_ok());
}

TEST(CdbTest, ReadCapacityDataSaturates) {
  Bytes d = make_read_capacity10_data(0x200000000ull, 512);
  // > 2^32 blocks: max LBA pinned to 0xFFFFFFFF
  EXPECT_EQ(d[0], 0xFF);
  EXPECT_EQ(d[3], 0xFF);
  d = make_read_capacity10_data(100, 4096);
  EXPECT_EQ(d[3], 99);
}

// ---- full sessions --------------------------------------------------------------

struct SessionFixture {
  std::shared_ptr<MemDisk> disk;
  std::shared_ptr<IscsiTarget> target;
  std::thread server;
  std::unique_ptr<IscsiInitiator> initiator;

  explicit SessionFixture(TargetConfig target_config = {},
                          InitiatorConfig initiator_config = {}) {
    disk = std::make_shared<MemDisk>(256, 512);
    target = std::make_shared<IscsiTarget>(disk, target_config);
    auto [client_end, server_end] = make_inproc_pair();
    server = std::thread(
        [t = target, s = std::shared_ptr<Transport>(std::move(server_end))] {
          ASSERT_TRUE(t->serve(*s).is_ok());
        });
    auto init = IscsiInitiator::login(std::move(client_end), initiator_config);
    EXPECT_TRUE(init.is_ok()) << init.status().to_string();
    if (init.is_ok()) initiator = std::move(*init);
  }

  ~SessionFixture() {
    initiator.reset();  // logs out
    if (server.joinable()) server.join();
  }
};

TEST(IscsiSessionTest, DiscoversGeometry) {
  SessionFixture fx;
  ASSERT_NE(fx.initiator, nullptr);
  EXPECT_EQ(fx.initiator->block_size(), 512u);
  EXPECT_EQ(fx.initiator->num_blocks(), 256u);
  EXPECT_NE(fx.initiator->target_name().find("iqn."), std::string::npos);
}

TEST(IscsiSessionTest, ReadWriteRoundTrip) {
  SessionFixture fx;
  ASSERT_NE(fx.initiator, nullptr);
  Rng rng(1);
  Bytes data(512 * 3);
  rng.fill(data);
  ASSERT_TRUE(fx.initiator->write(10, data).is_ok());
  Bytes out(512 * 3);
  ASSERT_TRUE(fx.initiator->read(10, out).is_ok());
  EXPECT_EQ(out, data);
  // The remote disk really has the bytes.
  Bytes direct(512 * 3);
  ASSERT_TRUE(fx.disk->read(10, direct).is_ok());
  EXPECT_EQ(direct, data);
}

TEST(IscsiSessionTest, LargeWriteTakesR2tPath) {
  TargetConfig target_config;
  target_config.max_immediate_data = 1024;  // force R2T beyond 2 blocks
  target_config.max_data_segment = 1024;
  InitiatorConfig initiator_config;
  initiator_config.max_immediate_data = 1024;
  initiator_config.max_data_segment = 1024;
  SessionFixture fx(target_config, initiator_config);
  ASSERT_NE(fx.initiator, nullptr);

  Rng rng(2);
  Bytes data(512 * 32);  // 16 KB >> 1 KB immediate limit
  rng.fill(data);
  ASSERT_TRUE(fx.initiator->write(0, data).is_ok());
  Bytes out(512 * 32);
  ASSERT_TRUE(fx.initiator->read(0, out).is_ok());
  EXPECT_EQ(out, data);
}

TEST(IscsiSessionTest, OutOfRangeIoFailsWithScsiError) {
  SessionFixture fx;
  ASSERT_NE(fx.initiator, nullptr);
  Bytes block(512);
  EXPECT_EQ(fx.initiator->read(256, block).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(fx.initiator->write(300, block).code(), ErrorCode::kOutOfRange);
  // In-range traffic still works afterwards.
  EXPECT_TRUE(fx.initiator->write(0, block).is_ok());
}

TEST(IscsiSessionTest, PingAndFlush) {
  SessionFixture fx;
  ASSERT_NE(fx.initiator, nullptr);
  EXPECT_TRUE(fx.initiator->ping().is_ok());
  EXPECT_TRUE(fx.initiator->flush().is_ok());
  EXPECT_GT(fx.target->commands_served(), 0u);
}

TEST(IscsiSessionTest, LogoutIsIdempotentAndFinal) {
  SessionFixture fx;
  ASSERT_NE(fx.initiator, nullptr);
  EXPECT_TRUE(fx.initiator->logout().is_ok());
  EXPECT_TRUE(fx.initiator->logout().is_ok());
  Bytes block(512);
  EXPECT_EQ(fx.initiator->read(0, block).code(), ErrorCode::kUnavailable);
}

TEST(IscsiSessionTest, WorksOverTcp) {
  auto disk = std::make_shared<MemDisk>(64, 4096);
  auto target = std::make_shared<IscsiTarget>(disk);
  auto listener_or = TcpListener::listen(0);
  ASSERT_TRUE(listener_or.is_ok());
  auto listener = std::shared_ptr<TcpListener>(std::move(*listener_or));
  const std::uint16_t port = listener->port();
  std::thread server = serve_in_background(target, listener);

  auto transport = TcpTransport::connect("127.0.0.1", port);
  ASSERT_TRUE(transport.is_ok());
  auto initiator = IscsiInitiator::login(std::move(*transport));
  ASSERT_TRUE(initiator.is_ok()) << initiator.status().to_string();
  Rng rng(3);
  Bytes data(4096 * 2);
  rng.fill(data);
  ASSERT_TRUE((*initiator)->write(5, data).is_ok());
  Bytes out(4096 * 2);
  ASSERT_TRUE((*initiator)->read(5, out).is_ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE((*initiator)->logout().is_ok());
  listener->close();
  server.join();
}

TEST(CdbTest, SixteenByteFormsRoundTrip) {
  Byte buf[kCdbSize];
  make_read16(0x123456789ABCull, 0x12345).encode(buf);
  auto read = Cdb::decode(ByteSpan(buf, kCdbSize));
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read->op, ScsiOp::kRead16);
  EXPECT_EQ(read->lba, 0x123456789ABCull);
  EXPECT_EQ(read->blocks, 0x12345u);

  make_write16(0xFFFFFFFF00ull, 7).encode(buf);
  auto write = Cdb::decode(ByteSpan(buf, kCdbSize));
  ASSERT_TRUE(write.is_ok());
  EXPECT_EQ(write->op, ScsiOp::kWrite16);
  EXPECT_EQ(write->lba, 0xFFFFFFFF00ull);

  make_report_luns(4096).encode(buf);
  auto rl = Cdb::decode(ByteSpan(buf, kCdbSize));
  ASSERT_TRUE(rl.is_ok());
  EXPECT_EQ(rl->op, ScsiOp::kReportLuns);
  EXPECT_EQ(rl->alloc_len, 4096u);
}

TEST(PduTest, HeaderDigestRoundTripAndDetection) {
  Pdu pdu;
  pdu.opcode = Opcode::kScsiCommand;
  pdu.itt = 42;
  pdu.data = {1, 2, 3};
  Bytes wire = pdu.encode(/*header_digest=*/true);
  EXPECT_EQ(wire.size(), (48u + 4 + 3 + 3) & ~3u);
  auto back = Pdu::decode(wire, /*header_digest=*/true);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back->itt, 42u);
  EXPECT_EQ(back->data, pdu.data);
  // Flip a BHS bit: the digest must catch it.
  wire[17] ^= 0x01;
  auto bad = Pdu::decode(wire, true);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.status().message().find("digest"), std::string::npos);
  // Decoding a digested PDU without the flag mis-frames and must not
  // silently succeed with the right payload.
  wire[17] ^= 0x01;  // restore
  auto misread = Pdu::decode(wire, false);
  if (misread.is_ok()) {
    EXPECT_NE(misread->data, pdu.data);
  }
}

TEST(IscsiSessionTest, ReportLunsListsTheLun) {
  SessionFixture fx;
  ASSERT_NE(fx.initiator, nullptr);
  auto luns = fx.initiator->report_luns();
  ASSERT_TRUE(luns.is_ok()) << luns.status().to_string();
  ASSERT_EQ(luns->size(), 1u);
  EXPECT_EQ((*luns)[0], 0u);
}

TEST(IscsiSessionTest, HeaderDigestNegotiatedAndWorking) {
  InitiatorConfig initiator_config;
  initiator_config.request_header_digest = true;
  SessionFixture fx(TargetConfig{}, initiator_config);
  ASSERT_NE(fx.initiator, nullptr);
  EXPECT_TRUE(fx.initiator->header_digest());
  Rng rng(5);
  Bytes data(512 * 4);
  rng.fill(data);
  ASSERT_TRUE(fx.initiator->write(8, data).is_ok());
  Bytes out(512 * 4);
  ASSERT_TRUE(fx.initiator->read(8, out).is_ok());
  EXPECT_EQ(out, data);
  EXPECT_TRUE(fx.initiator->ping().is_ok());
}

TEST(IscsiSessionTest, HeaderDigestDeclinedWhenTargetForbidsIt) {
  TargetConfig target_config;
  target_config.allow_header_digest = false;
  InitiatorConfig initiator_config;
  initiator_config.request_header_digest = true;
  SessionFixture fx(target_config, initiator_config);
  ASSERT_NE(fx.initiator, nullptr);
  EXPECT_FALSE(fx.initiator->header_digest());
  Bytes block(512, 0x42);
  EXPECT_TRUE(fx.initiator->write(0, block).is_ok());
}

TEST(IscsiSessionTest, DiscoverySessionListsTargets) {
  auto disk = std::make_shared<MemDisk>(16, 512);
  TargetConfig config;
  config.target_name = "iqn.2006-04.test:vol0";
  auto target = std::make_shared<IscsiTarget>(disk, config);
  auto [client_end, server_end] = make_inproc_pair();
  std::thread server(
      [t = target, s = std::shared_ptr<Transport>(std::move(server_end))] {
        ASSERT_TRUE(t->serve(*s).is_ok());
      });
  auto targets = discover_targets(std::move(client_end));
  ASSERT_TRUE(targets.is_ok()) << targets.status().to_string();
  ASSERT_EQ(targets->size(), 1u);
  EXPECT_EQ((*targets)[0], "iqn.2006-04.test:vol0");
  server.join();
}

TEST(IscsiSessionTest, DiscoveryThenNormalLoginWorkflow) {
  // The standard flow: discover the target name first, then log in to it.
  auto disk = std::make_shared<MemDisk>(16, 512);
  auto target = std::make_shared<IscsiTarget>(disk);
  InprocNetwork net;
  auto listener_or = net.listen("portal");
  ASSERT_TRUE(listener_or.is_ok());
  auto listener = std::shared_ptr<Listener>(std::move(*listener_or));
  std::thread server = serve_in_background(target, listener);

  auto discovery_conn = net.connect("portal");
  ASSERT_TRUE(discovery_conn.is_ok());
  auto targets = discover_targets(std::move(*discovery_conn));
  ASSERT_TRUE(targets.is_ok());
  ASSERT_FALSE(targets->empty());

  auto session_conn = net.connect("portal");
  ASSERT_TRUE(session_conn.is_ok());
  auto initiator = IscsiInitiator::login(std::move(*session_conn));
  ASSERT_TRUE(initiator.is_ok());
  EXPECT_EQ((*initiator)->target_name(), (*targets)[0]);
  ASSERT_TRUE((*initiator)->logout().is_ok());
  listener->close();
  server.join();
}

TEST(IscsiSessionTest, ProtocolViolationsAreRejected) {
  // Speak raw PDUs at the target: commands before login are fatal, and a
  // target-opcode PDU after login draws a Reject.
  auto disk = std::make_shared<MemDisk>(16, 512);
  auto target = std::make_shared<IscsiTarget>(disk);

  {
    // SCSI command before login: session terminated with an error.
    auto [client, server_end] = make_inproc_pair();
    std::thread server(
        [t = target, s = std::shared_ptr<Transport>(std::move(server_end))] {
          EXPECT_FALSE(t->serve(*s).is_ok());
        });
    Pdu premature;
    premature.opcode = Opcode::kScsiCommand;
    ASSERT_TRUE(client->send(premature.encode()).is_ok());
    server.join();
  }
  {
    // Target-to-initiator opcode after login: Reject PDU, session lives.
    auto [client, server_end] = make_inproc_pair();
    std::thread server(
        [t = target, s = std::shared_ptr<Transport>(std::move(server_end))] {
          (void)t->serve(*s);
        });
    Pdu login;
    login.opcode = Opcode::kLoginRequest;
    login.flags = static_cast<std::uint8_t>(
        kLoginTransit | (kStageOperational << 2) | kStageFullFeature);
    login.itt = 1;
    ASSERT_TRUE(client->send(login.encode()).is_ok());
    ASSERT_TRUE(client->recv().is_ok());  // login response

    Pdu bogus;
    bogus.opcode = Opcode::kNopIn;  // only targets send NOP-In
    bogus.itt = 2;
    ASSERT_TRUE(client->send(bogus.encode()).is_ok());
    auto reply = client->recv();
    ASSERT_TRUE(reply.is_ok());
    auto decoded = Pdu::decode(*reply);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded->opcode, Opcode::kReject);
    client->close();
    server.join();
  }
}

TEST(IscsiSessionTest, InitiatorIsABlockDevice) {
  // The initiator can stand in anywhere a BlockDevice is expected — the
  // property the PRINS engine's "communication module" relies on.
  SessionFixture fx;
  ASSERT_NE(fx.initiator, nullptr);
  BlockDevice& dev = *fx.initiator;
  Bytes block(512, 0x5A);
  ASSERT_TRUE(dev.write(1, block).is_ok());
  Bytes out(512);
  ASSERT_TRUE(dev.read(1, out).is_ok());
  EXPECT_EQ(out, block);
  EXPECT_EQ(dev.capacity_bytes(), 256u * 512u);
}

}  // namespace
}  // namespace prins::iscsi
