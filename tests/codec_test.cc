// Tests for the codec layer: round trips across content classes,
// corruption detection, and the compression-ratio properties the paper's
// traffic results rest on.
#include <gtest/gtest.h>

#include <algorithm>

#include "codec/codec.h"
#include "codec/lz.h"
#include "codec/zero_rle.h"
#include "common/rng.h"
#include "common/varint.h"
#include "workload/text.h"

namespace prins {
namespace {

/// The content classes the experiments exercise.
enum class Content { kAllZero, kSparseParity, kText, kRandom, kRepetitive };

Bytes make_content(Content kind, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n, 0);
  switch (kind) {
    case Content::kAllZero:
      break;
    case Content::kSparseParity: {
      // ~10% of bytes nonzero in a few runs: a typical P'.
      const std::size_t runs = 4;
      for (std::size_t r = 0; r < runs && n > 0; ++r) {
        const std::size_t len = std::max<std::size_t>(1, n / 40);
        const std::size_t at = rng.next_below(n - len + 1);
        rng.fill(MutByteSpan(out).subspan(at, len));
      }
      break;
    }
    case Content::kText:
      fill_words(rng, out);
      break;
    case Content::kRandom:
      rng.fill(out);
      break;
    case Content::kRepetitive:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<Byte>("ABCD"[i % 4]);
      }
      break;
  }
  return out;
}

struct RoundTripCase {
  CodecId codec;
  Content content;
  std::size_t size;
};

class CodecRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(CodecRoundTrip, EncodeDecodeIsIdentity) {
  const auto& p = GetParam();
  const Codec& codec = codec_for(p.codec);
  const Bytes raw = make_content(p.content, p.size, p.size + 17);
  const Bytes body = codec.encode(raw);
  auto back = codec.decode(body, raw.size());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(*back, raw);
}

TEST_P(CodecRoundTrip, FramedRoundTrip) {
  const auto& p = GetParam();
  const Codec& codec = codec_for(p.codec);
  const Bytes raw = make_content(p.content, p.size, p.size + 31);
  const Bytes frame = encode_frame(codec, raw);
  EXPECT_EQ(frame.size(), framed_size(codec, raw));
  auto back = decode_frame(frame);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(*back, raw);
}

std::vector<RoundTripCase> all_cases() {
  std::vector<RoundTripCase> cases;
  for (CodecId codec : {CodecId::kNull, CodecId::kZeroRle, CodecId::kLz,
                        CodecId::kZeroRleLz}) {
    for (Content content :
         {Content::kAllZero, Content::kSparseParity, Content::kText,
          Content::kRandom, Content::kRepetitive}) {
      for (std::size_t size : {0ul, 1ul, 5ul, 511ul, 4096ul, 65536ul}) {
        cases.push_back({codec, content, size});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCodecsAllContents, CodecRoundTrip,
                         ::testing::ValuesIn(all_cases()));

TEST(CodecTest, RandomFuzzRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = rng.next_below(3000);
    Bytes raw(n);
    // Mixed density: random run structure stresses both codecs.
    std::size_t i = 0;
    while (i < n) {
      const std::size_t len = std::min<std::size_t>(rng.next_in(1, 64), n - i);
      if (rng.next_bool(0.5)) {
        rng.fill(MutByteSpan(raw).subspan(i, len));
      }
      i += len;
    }
    for (CodecId id : {CodecId::kZeroRle, CodecId::kLz, CodecId::kZeroRleLz}) {
      const Codec& codec = codec_for(id);
      auto back = codec.decode(codec.encode(raw), raw.size());
      ASSERT_TRUE(back.is_ok()) << "trial " << trial;
      ASSERT_EQ(*back, raw) << "trial " << trial;
    }
  }
}

// ---- ratio properties -------------------------------------------------------

TEST(CodecRatioTest, ZeroRleCollapsesAllZeroBlocks) {
  const Bytes zeros(8192, 0);
  const Bytes body = codec_for(CodecId::kZeroRle).encode(zeros);
  EXPECT_LE(body.size(), 4u);  // two varints
}

TEST(CodecRatioTest, SparseParityShrinksByOrderOfMagnitude) {
  const Bytes parity = make_content(Content::kSparseParity, 8192, 5);
  const Bytes rle = codec_for(CodecId::kZeroRle).encode(parity);
  EXPECT_LT(rle.size(), parity.size() / 5);
  const Bytes rle_lz = codec_for(CodecId::kZeroRleLz).encode(parity);
  EXPECT_LT(rle_lz.size(), parity.size() / 5);
}

TEST(CodecRatioTest, LzCompressesTextButNotRandom) {
  const Bytes text = make_content(Content::kText, 8192, 6);
  const Bytes text_lz = codec_for(CodecId::kLz).encode(text);
  EXPECT_LT(text_lz.size(), text.size() / 2);  // words repeat

  const Bytes noise = make_content(Content::kRandom, 8192, 7);
  const Bytes noise_lz = codec_for(CodecId::kLz).encode(noise);
  EXPECT_GT(noise_lz.size(), noise.size() * 9 / 10);  // incompressible
  EXPECT_LT(noise_lz.size(), noise.size() + 64);      // bounded expansion
}

TEST(CodecRatioTest, RepetitiveContentCompressesExtremely) {
  const Bytes rep = make_content(Content::kRepetitive, 65536, 8);
  const Bytes lz = codec_for(CodecId::kLz).encode(rep);
  EXPECT_LT(lz.size(), 256u);
}

// ---- corruption handling ------------------------------------------------------

TEST(CodecCorruptionTest, FrameCrcDetectsBitFlip) {
  const Bytes raw = make_content(Content::kText, 1024, 9);
  Bytes frame = encode_frame(codec_for(CodecId::kLz), raw);
  frame[frame.size() / 2] ^= 0x01;
  auto back = decode_frame(frame);
  ASSERT_FALSE(back.is_ok());
  EXPECT_EQ(back.status().code(), ErrorCode::kCorruption);
}

TEST(CodecCorruptionTest, EmptyAndTruncatedFramesRejected) {
  EXPECT_FALSE(decode_frame({}).is_ok());
  const Bytes raw(100, 1);
  Bytes frame = encode_frame(codec_for(CodecId::kZeroRle), raw);
  for (std::size_t cut : {1ul, 3ul, frame.size() - 1}) {
    auto back = decode_frame(ByteSpan(frame).first(cut));
    EXPECT_FALSE(back.is_ok()) << "cut " << cut;
  }
}

TEST(CodecCorruptionTest, UnknownCodecIdRejected) {
  Bytes frame{0x77, 0x00, 0x00, 0x00, 0x00, 0x00};
  EXPECT_FALSE(decode_frame(frame).is_ok());
  EXPECT_FALSE(parse_codec_id(0x77).is_ok());
  EXPECT_TRUE(parse_codec_id(0).is_ok());
}

TEST(CodecCorruptionTest, ZeroRleRejectsOverflowingRuns) {
  // zero run longer than the declared raw size
  Bytes body;
  put_varint(body, 100);  // zeros
  put_varint(body, 0);    // literals
  auto back = codec_for(CodecId::kZeroRle).decode(body, 50);
  EXPECT_EQ(back.status().code(), ErrorCode::kCorruption);
}

TEST(CodecCorruptionTest, ZeroRleRejectsShortOutput) {
  Bytes body;
  put_varint(body, 10);
  put_varint(body, 0);
  auto back = codec_for(CodecId::kZeroRle).decode(body, 50);
  EXPECT_EQ(back.status().code(), ErrorCode::kCorruption);
}

TEST(CodecCorruptionTest, LzRejectsBadDistances) {
  Bytes body;
  put_varint(body, (4ull << 1) | 1);  // match len 4
  put_varint(body, 9);                // distance 9 into empty history
  auto back = codec_for(CodecId::kLz).decode(body, 4);
  EXPECT_EQ(back.status().code(), ErrorCode::kCorruption);
}

TEST(CodecCorruptionTest, LzRejectsLiteralOverrun) {
  Bytes body;
  put_varint(body, 100ull << 1);  // 100 literals declared
  body.push_back(1);              // only one present
  auto back = codec_for(CodecId::kLz).decode(body, 100);
  EXPECT_EQ(back.status().code(), ErrorCode::kCorruption);
}

TEST(CodecCorruptionTest, NullCodecChecksSize) {
  const Bytes raw(10, 1);
  auto back = codec_for(CodecId::kNull).decode(raw, 11);
  EXPECT_EQ(back.status().code(), ErrorCode::kCorruption);
}

// ---- LZ specifics -------------------------------------------------------------

TEST(LzTest, OverlappingMatchDecodes) {
  // "AAAAAAAA...": matches with distance 1, length > distance.
  Bytes raw(1000, 'A');
  const Codec& lz = codec_for(CodecId::kLz);
  const Bytes body = lz.encode(raw);
  EXPECT_LT(body.size(), 32u);
  auto back = lz.decode(body, raw.size());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, raw);
}

TEST(LzTest, NamesAreStable) {
  EXPECT_EQ(codec_for(CodecId::kNull).name(), "null");
  EXPECT_EQ(codec_for(CodecId::kZeroRle).name(), "zero-rle");
  EXPECT_EQ(codec_for(CodecId::kLz).name(), "lz");
  EXPECT_EQ(codec_for(CodecId::kZeroRleLz).name(), "zero-rle+lz");
}

}  // namespace
}  // namespace prins
