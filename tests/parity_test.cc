// Tests for the XOR parity algebra and RAID stripe geometry — the
// correctness bedrock of PRINS.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "parity/stripe.h"
#include "parity/xor.h"

namespace prins {
namespace {

class XorSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XorSizes, SelfInverse) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  Bytes a(n), b(n);
  rng.fill(a);
  rng.fill(b);
  Bytes x = a;
  xor_into(x, b);
  xor_into(x, b);  // applying the same delta twice cancels
  EXPECT_EQ(x, a);
}

TEST_P(XorSizes, ForwardBackwardRecoversNewData) {
  // The PRINS round trip: P' = new ⊕ old at the primary,
  // new = P' ⊕ old at the replica.
  const std::size_t n = GetParam();
  Rng rng(n + 2);
  Bytes old_block(n), new_block(n);
  rng.fill(old_block);
  rng.fill(new_block);
  const Bytes p = parity_delta(new_block, old_block);
  Bytes recovered(n);
  xor_to(recovered, p, old_block);
  EXPECT_EQ(recovered, new_block);
}

TEST_P(XorSizes, DeltasCompose) {
  // Applying P'1 then P'2 equals applying P'1 ⊕ P'2 — the TRAP telescope.
  const std::size_t n = GetParam();
  Rng rng(n + 3);
  Bytes v0(n), v1(n), v2(n);
  rng.fill(v0);
  rng.fill(v1);
  rng.fill(v2);
  const Bytes d1 = parity_delta(v1, v0);
  const Bytes d2 = parity_delta(v2, v1);
  Bytes combined = d1;
  xor_into(combined, d2);
  Bytes out = v0;
  xor_into(out, combined);
  EXPECT_EQ(out, v2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, XorSizes,
                         ::testing::Values(0, 1, 7, 8, 9, 63, 64, 65, 512,
                                           4096, 65536));

TEST(XorTest, UnchangedDataGivesZeroParity) {
  Rng rng(4);
  Bytes block(4096);
  rng.fill(block);
  const Bytes p = parity_delta(block, block);
  EXPECT_TRUE(all_zero(p));
  EXPECT_EQ(count_nonzero(p), 0u);
  EXPECT_EQ(dirty_fraction(p), 0.0);
}

TEST(XorTest, DirtyFractionMatchesChangedBytes) {
  Bytes old_block(1000, 0xAA);
  Bytes new_block = old_block;
  for (int i = 100; i < 150; ++i) new_block[i] = 0x55;  // 50 changed bytes
  const Bytes p = parity_delta(new_block, old_block);
  EXPECT_EQ(count_nonzero(p), 50u);
  EXPECT_NEAR(dirty_fraction(p), 0.05, 1e-9);
}

TEST(XorTest, EmptySpanDirtyFractionIsZero) {
  EXPECT_EQ(dirty_fraction({}), 0.0);
}

// ---- stripe geometry ---------------------------------------------------------

struct GeometryCase {
  RaidLevel level;
  unsigned disks;
};

class StripeGeometryTest
    : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(StripeGeometryTest, LocateAndLogicalAreInverse) {
  const StripeGeometry geo(GetParam().level, GetParam().disks);
  for (std::uint64_t lba = 0; lba < 500; ++lba) {
    const StripeLocation loc = geo.locate(lba);
    EXPECT_LT(loc.data_disk, geo.num_disks());
    if (geo.level() != RaidLevel::kRaid0) {
      EXPECT_NE(loc.data_disk, loc.parity_disk);
      EXPECT_LT(loc.parity_disk, geo.num_disks());
    }
    const unsigned slot = geo.slot_of(loc.stripe, loc.data_disk);
    EXPECT_EQ(geo.logical_of(loc.stripe, slot), lba);
    EXPECT_EQ(geo.disk_of_slot(loc.stripe, slot), loc.data_disk);
  }
}

TEST_P(StripeGeometryTest, StripeDataDisksAreDistinct) {
  const StripeGeometry geo(GetParam().level, GetParam().disks);
  for (std::uint64_t stripe = 0; stripe < 50; ++stripe) {
    std::set<unsigned> used;
    for (unsigned slot = 0; slot < geo.data_disks(); ++slot) {
      used.insert(geo.disk_of_slot(stripe, slot));
    }
    EXPECT_EQ(used.size(), geo.data_disks());
    if (geo.level() != RaidLevel::kRaid0) {
      EXPECT_FALSE(used.contains(geo.parity_disk_of(stripe)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, StripeGeometryTest,
    ::testing::Values(GeometryCase{RaidLevel::kRaid0, 2},
                      GeometryCase{RaidLevel::kRaid0, 5},
                      GeometryCase{RaidLevel::kRaid4, 3},
                      GeometryCase{RaidLevel::kRaid4, 8},
                      GeometryCase{RaidLevel::kRaid5, 3},
                      GeometryCase{RaidLevel::kRaid5, 4},
                      GeometryCase{RaidLevel::kRaid5, 7}));

TEST(StripeGeometryTest, Raid4ParityIsFixed) {
  const StripeGeometry geo(RaidLevel::kRaid4, 5);
  for (std::uint64_t s = 0; s < 100; ++s) {
    EXPECT_EQ(geo.parity_disk_of(s), 4u);
  }
}

TEST(StripeGeometryTest, Raid5ParityRotatesThroughAllDisks) {
  const StripeGeometry geo(RaidLevel::kRaid5, 4);
  std::set<unsigned> seen;
  for (std::uint64_t s = 0; s < 4; ++s) seen.insert(geo.parity_disk_of(s));
  EXPECT_EQ(seen.size(), 4u);
  // Left-symmetric: stripe 0 parity on the last disk, walking left.
  EXPECT_EQ(geo.parity_disk_of(0), 3u);
  EXPECT_EQ(geo.parity_disk_of(1), 2u);
  EXPECT_EQ(geo.parity_disk_of(2), 1u);
  EXPECT_EQ(geo.parity_disk_of(3), 0u);
  EXPECT_EQ(geo.parity_disk_of(4), 3u);
}

TEST(StripeGeometryTest, DataDiskCounts) {
  EXPECT_EQ(StripeGeometry(RaidLevel::kRaid0, 4).data_disks(), 4u);
  EXPECT_EQ(StripeGeometry(RaidLevel::kRaid4, 4).data_disks(), 3u);
  EXPECT_EQ(StripeGeometry(RaidLevel::kRaid5, 4).data_disks(), 3u);
}

}  // namespace
}  // namespace prins
