// End-to-end tests for the PRINS engine and replica: replication under
// every policy, RAID-tap mode, initial sync, verify/repair, drain
// semantics, multi-replica fan-out, and failure handling.
#include <gtest/gtest.h>

#include <thread>

#include "block/faulty_disk.h"
#include "block/mem_disk.h"
#include "codec/codec.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "net/traffic_meter.h"
#include "prins/engine.h"
#include "prins/replica.h"
#include "raid/raid_array.h"

namespace prins {
namespace {

constexpr std::uint32_t kBs = 1024;
constexpr std::uint64_t kBlocks = 128;

Bytes random_block(std::uint64_t seed, std::size_t n = kBs) {
  Rng rng(seed);
  Bytes b(n);
  rng.fill(b);
  return b;
}

/// Primary + one replica over an in-proc link, with a traffic meter.
struct Rig {
  std::shared_ptr<MemDisk> primary_disk;
  std::shared_ptr<MemDisk> replica_disk;
  std::shared_ptr<ReplicaEngine> replica;
  std::unique_ptr<PrinsEngine> engine;
  TrafficMeter* meter = nullptr;
  std::thread server;

  explicit Rig(ReplicationPolicy policy, bool keep_trap = false) {
    primary_disk = std::make_shared<MemDisk>(kBlocks, kBs);
    replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
    ReplicaConfig replica_config;
    replica_config.keep_trap_log = keep_trap;
    replica = std::make_shared<ReplicaEngine>(replica_disk, replica_config);

    EngineConfig config;
    config.policy = policy;
    engine = std::make_unique<PrinsEngine>(primary_disk, config);

    auto [primary_end, replica_end] = make_inproc_pair();
    auto metered = std::make_unique<TrafficMeter>(std::move(primary_end));
    meter = metered.get();
    engine->add_replica(std::move(metered));
    server = std::thread(
        [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
          ASSERT_TRUE(r->serve(*t).is_ok());
        });
  }

  ~Rig() {
    engine.reset();
    if (server.joinable()) server.join();
  }

  bool devices_match() {
    Bytes a(kBs), b(kBs);
    for (Lba lba = 0; lba < kBlocks; ++lba) {
      EXPECT_TRUE(primary_disk->read(lba, a).is_ok());
      EXPECT_TRUE(replica_disk->read(lba, b).is_ok());
      if (a != b) return false;
    }
    return true;
  }
};

class EnginePolicies : public ::testing::TestWithParam<ReplicationPolicy> {};

TEST_P(EnginePolicies, WritesReachTheReplica) {
  Rig rig(GetParam());
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Lba lba = rng.next_below(kBlocks);
    ASSERT_TRUE(rig.engine->write(lba, random_block(1000 + i)).is_ok());
  }
  ASSERT_TRUE(rig.engine->drain().is_ok());
  EXPECT_TRUE(rig.devices_match());
  const auto metrics = rig.engine->metrics();
  EXPECT_EQ(metrics.writes, 200u);
  EXPECT_EQ(metrics.acks, 200u);
  EXPECT_EQ(metrics.raw_bytes, 200u * kBs);
  EXPECT_GT(metrics.payload_bytes, 0u);
}

TEST_P(EnginePolicies, OverwritesOfSameBlockStayConsistent) {
  Rig rig(GetParam());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.engine->write(7, random_block(2000 + i)).is_ok());
  }
  ASSERT_TRUE(rig.engine->drain().is_ok());
  EXPECT_TRUE(rig.devices_match());
}

TEST_P(EnginePolicies, MultiBlockWritesReplicatePerBlock) {
  Rig rig(GetParam());
  const Bytes data = random_block(3, 4 * kBs);
  ASSERT_TRUE(rig.engine->write(10, data).is_ok());
  ASSERT_TRUE(rig.engine->drain().is_ok());
  EXPECT_EQ(rig.engine->metrics().writes, 4u);
  EXPECT_TRUE(rig.devices_match());
}

INSTANTIATE_TEST_SUITE_P(Policies, EnginePolicies,
                         ::testing::Values(
                             ReplicationPolicy::kTraditional,
                             ReplicationPolicy::kTraditionalCompressed,
                             ReplicationPolicy::kPrins,
                             ReplicationPolicy::kPrinsRle));

// End-to-end property sweep: every (block size, policy) combination must
// converge the replica, across the full range of the paper's block sizes.
struct SweepCase {
  std::uint32_t block_size;
  ReplicationPolicy policy;
};

class EngineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EngineSweep, ReplicaConvergesAtEveryGeometry) {
  const auto& p = GetParam();
  const std::uint64_t blocks = 32;
  auto primary = std::make_shared<MemDisk>(blocks, p.block_size);
  EngineConfig config;
  config.policy = p.policy;
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  auto replica_disk = std::make_shared<MemDisk>(blocks, p.block_size);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        ASSERT_TRUE(r->serve(*t).is_ok());
      });

  Rng rng(p.block_size + static_cast<int>(p.policy));
  Bytes block(p.block_size);
  for (int i = 0; i < 60; ++i) {
    const Lba lba = rng.next_below(blocks);
    ASSERT_TRUE(engine->read(lba, block).is_ok());
    // Partial update of ~1/16 of the block.
    const std::size_t len = std::max<std::size_t>(1, p.block_size / 16);
    rng.fill(MutByteSpan(block).subspan(rng.next_below(p.block_size - len + 1),
                                        len));
    ASSERT_TRUE(engine->write(lba, block).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());

  Bytes a(p.block_size), b(p.block_size);
  for (Lba lba = 0; lba < blocks; ++lba) {
    ASSERT_TRUE(primary->read(lba, a).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, b).is_ok());
    ASSERT_EQ(a, b) << "lba " << lba;
  }
  engine.reset();
  server.join();
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (std::uint32_t bs : {512u, 4096u, 8192u, 16384u, 65536u}) {
    for (ReplicationPolicy policy : {ReplicationPolicy::kTraditional,
                                     ReplicationPolicy::kTraditionalCompressed,
                                     ReplicationPolicy::kPrins,
                                     ReplicationPolicy::kPrinsRle}) {
      cases.push_back(SweepCase{bs, policy});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Geometries, EngineSweep,
                         ::testing::ValuesIn(sweep_cases()));

TEST(EngineTest, PrinsTrafficBeatsTraditionalOnPartialWrites) {
  // Partial-block change: flip 5% of a block; PRINS payload must be far
  // smaller than the traditional full block.
  std::uint64_t traditional_bytes = 0, prins_bytes = 0;
  for (ReplicationPolicy policy : {ReplicationPolicy::kTraditional,
                                   ReplicationPolicy::kPrins}) {
    Rig rig(policy);
    Bytes block = random_block(4);
    ASSERT_TRUE(rig.engine->write(0, block).is_ok());
    for (int i = 0; i < 50; ++i) {
      // Change 50 bytes of the 1 KB block.
      Rng rng(100 + i);
      rng.fill(MutByteSpan(block).subspan(100, 50));
      ASSERT_TRUE(rig.engine->write(0, block).is_ok());
    }
    ASSERT_TRUE(rig.engine->drain().is_ok());
    EXPECT_TRUE(rig.devices_match());
    const auto sent = rig.meter->sent();
    if (policy == ReplicationPolicy::kTraditional) {
      traditional_bytes = sent.payload_bytes;
    } else {
      prins_bytes = sent.payload_bytes;
    }
  }
  EXPECT_LT(prins_bytes * 4, traditional_bytes);
}

TEST(EngineTest, DirtyBytesMetricTracksActualChange) {
  Rig rig(ReplicationPolicy::kPrins);
  Bytes block(kBs, 0);
  ASSERT_TRUE(rig.engine->write(0, block).is_ok());
  block[10] = 1;
  block[20] = 2;
  block[30] = 3;
  ASSERT_TRUE(rig.engine->write(0, block).is_ok());
  ASSERT_TRUE(rig.engine->drain().is_ok());
  const auto metrics = rig.engine->metrics();
  EXPECT_EQ(metrics.dirty_bytes.max(), 3u);  // exactly three bytes changed
}

TEST(EngineTest, FullSyncBringsBlankReplicaInSync) {
  Rig rig(ReplicationPolicy::kPrins);
  // Scribble on the primary directly (before replication).
  Rng rng(5);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(rig.primary_disk->write(lba, random_block(3000 + lba)).is_ok());
  }
  EXPECT_FALSE(rig.devices_match());
  ASSERT_TRUE(rig.engine->full_sync().is_ok());
  EXPECT_TRUE(rig.devices_match());
  EXPECT_EQ(rig.replica->metrics().sync_blocks, kBlocks);
}

TEST(EngineTest, ParityReplicationRequiresSyncedReplica) {
  // Without initial sync, parity applied to a divergent block yields
  // garbage — and verify_and_repair must detect and fix every mismatch.
  Rig rig(ReplicationPolicy::kPrins);
  ASSERT_TRUE(rig.primary_disk->write(0, random_block(6)).is_ok());
  // Replica missed that write; now replicate a parity update on top.
  ASSERT_TRUE(rig.engine->write(0, random_block(7)).is_ok());
  ASSERT_TRUE(rig.engine->drain().is_ok());
  EXPECT_FALSE(rig.devices_match());

  auto repaired = rig.engine->verify_and_repair(0, kBlocks);
  ASSERT_TRUE(repaired.is_ok()) << repaired.status().to_string();
  EXPECT_EQ(*repaired, 1u);
  EXPECT_TRUE(rig.devices_match());
}

TEST(EngineTest, VerifyAndRepairFixesScatteredCorruption) {
  Rig rig(ReplicationPolicy::kPrins);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(rig.engine->write(i, random_block(4000 + i)).is_ok());
  }
  ASSERT_TRUE(rig.engine->drain().is_ok());
  // Corrupt 5 replica blocks behind the engine's back.
  for (Lba lba : {3ull, 17ull, 31ull, 32ull, 60ull}) {
    ASSERT_TRUE(rig.replica_disk->write(lba, random_block(9000 + lba)).is_ok());
  }
  auto repaired = rig.engine->verify_and_repair(0, kBlocks);
  ASSERT_TRUE(repaired.is_ok());
  EXPECT_EQ(*repaired, 5u);
  EXPECT_TRUE(rig.devices_match());
  EXPECT_EQ(rig.replica->metrics().repairs, 5u);
  // Clean state: a second verify repairs nothing.
  auto again = rig.engine->verify_and_repair(0, kBlocks);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(*again, 0u);
}

TEST(EngineTest, HierarchicalVerifyFindsAndFixesCorruption) {
  Rig rig(ReplicationPolicy::kPrins);
  for (int i = 0; i < static_cast<int>(kBlocks); ++i) {
    ASSERT_TRUE(rig.engine->write(i, random_block(5000 + i)).is_ok());
  }
  ASSERT_TRUE(rig.engine->drain().is_ok());
  // Corrupt 3 scattered replica blocks.
  for (Lba lba : {5ull, 64ull, 120ull}) {
    ASSERT_TRUE(rig.replica_disk->write(lba, random_block(7000 + lba)).is_ok());
  }
  auto repaired = rig.engine->verify_and_repair_hierarchical(0, kBlocks);
  ASSERT_TRUE(repaired.is_ok()) << repaired.status().to_string();
  EXPECT_EQ(*repaired, 3u);
  EXPECT_TRUE(rig.devices_match());
  // Clean pass repairs nothing.
  auto again = rig.engine->verify_and_repair_hierarchical(0, kBlocks);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(*again, 0u);
}

TEST(EngineTest, HierarchicalVerifyUsesFarLessTrafficWhenClean) {
  // On a synced pair, the Merkle audit should exchange a handful of
  // fingerprints instead of one checksum per block.
  std::uint64_t flat_bytes = 0, merkle_bytes = 0;
  for (int mode = 0; mode < 2; ++mode) {
    Rig rig(ReplicationPolicy::kPrins);
    for (int i = 0; i < static_cast<int>(kBlocks); ++i) {
      ASSERT_TRUE(rig.engine->write(i, random_block(100 + i)).is_ok());
    }
    ASSERT_TRUE(rig.engine->drain().is_ok());
    const std::uint64_t before = rig.meter->sent().payload_bytes;
    auto repaired = mode == 0
                        ? rig.engine->verify_and_repair(0, kBlocks)
                        : rig.engine->verify_and_repair_hierarchical(0, kBlocks);
    ASSERT_TRUE(repaired.is_ok());
    EXPECT_EQ(*repaired, 0u);
    const std::uint64_t used = rig.meter->sent().payload_bytes - before;
    (mode == 0 ? flat_bytes : merkle_bytes) = used;
  }
  EXPECT_LT(merkle_bytes * 10, flat_bytes)
      << "merkle=" << merkle_bytes << " flat=" << flat_bytes;
}

TEST(EngineTest, HierarchicalVerifyRangeChecked) {
  Rig rig(ReplicationPolicy::kPrins);
  EXPECT_FALSE(
      rig.engine->verify_and_repair_hierarchical(0, kBlocks + 1).is_ok());
}

TEST(EngineTest, VerifyRangeChecked) {
  Rig rig(ReplicationPolicy::kPrins);
  EXPECT_FALSE(rig.engine->verify_and_repair(0, kBlocks + 1).is_ok());
  EXPECT_FALSE(rig.engine->verify_and_repair(kBlocks, 1).is_ok());
}

TEST(EngineTest, ReadsPassThrough) {
  Rig rig(ReplicationPolicy::kPrins);
  const Bytes data = random_block(8);
  ASSERT_TRUE(rig.engine->write(5, data).is_ok());
  Bytes out(kBs);
  ASSERT_TRUE(rig.engine->read(5, out).is_ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(rig.engine->block_size(), kBs);
  EXPECT_EQ(rig.engine->num_blocks(), kBlocks);
}

TEST(EngineTest, FlushDrainsBeforeReturning) {
  Rig rig(ReplicationPolicy::kPrins);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rig.engine->write(i % kBlocks, random_block(5000 + i)).is_ok());
  }
  ASSERT_TRUE(rig.engine->flush().is_ok());
  // After flush every write must be acked and applied.
  EXPECT_EQ(rig.engine->metrics().acks, 100u);
  EXPECT_TRUE(rig.devices_match());
}

TEST(EngineTest, MultipleReplicasAllConverge) {
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_unique<PrinsEngine>(primary, config);

  struct Node {
    std::shared_ptr<MemDisk> disk;
    std::shared_ptr<ReplicaEngine> replica;
    std::thread server;
  };
  std::vector<Node> nodes(3);
  for (auto& node : nodes) {
    node.disk = std::make_shared<MemDisk>(kBlocks, kBs);
    node.replica = std::make_shared<ReplicaEngine>(node.disk);
    auto [primary_end, replica_end] = make_inproc_pair();
    engine->add_replica(std::move(primary_end));
    node.server =
        std::thread([r = node.replica,
                     t = std::shared_ptr<Transport>(std::move(replica_end))] {
          ASSERT_TRUE(r->serve(*t).is_ok());
        });
  }

  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        engine->write(rng.next_below(kBlocks), random_block(6000 + i)).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_EQ(engine->metrics().acks, 300u);  // 100 writes × 3 replicas

  Bytes a(kBs), b(kBs);
  for (auto& node : nodes) {
    for (Lba lba = 0; lba < kBlocks; ++lba) {
      ASSERT_TRUE(primary->read(lba, a).is_ok());
      ASSERT_TRUE(node.disk->read(lba, b).is_ok());
      ASSERT_EQ(a, b) << "lba " << lba;
    }
  }
  engine.reset();
  for (auto& node : nodes) node.server.join();
}

TEST(EngineTest, RaidTapSuppliesParityWithoutExtraReads) {
  // Engine over a RAID-5 array: P' comes from the array's small-write
  // path, so the engine performs no additional read of the old data.
  std::vector<std::shared_ptr<BlockDevice>> members;
  for (int i = 0; i < 4; ++i) {
    members.push_back(std::make_shared<MemDisk>(64, kBs));
  }
  auto array_or = RaidArray::create(RaidLevel::kRaid5, members);
  ASSERT_TRUE(array_or.is_ok());
  auto array = std::shared_ptr<RaidArray>(std::move(*array_or));

  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_unique<PrinsEngine>(array, config);

  auto replica_disk = std::make_shared<MemDisk>(array->num_blocks(), kBs);
  // Initial sync: copy the (all-zero) array image — both start zeroed.
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        ASSERT_TRUE(r->serve(*t).is_ok());
      });

  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const Lba lba = rng.next_below(array->num_blocks());
    ASSERT_TRUE(engine->write(lba, random_block(7000 + i)).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());

  Bytes a(kBs), b(kBs);
  for (Lba lba = 0; lba < array->num_blocks(); ++lba) {
    ASSERT_TRUE(array->read(lba, a).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, b).is_ok());
    ASSERT_EQ(a, b) << "lba " << lba;
  }
  // The array's parity is still internally consistent.
  auto bad = array->scrub();
  ASSERT_TRUE(bad.is_ok());
  EXPECT_EQ(*bad, 0u);

  engine.reset();
  server.join();
}

TEST(EngineTest, Raid6TapSuppliesParityToo) {
  // The PRINS-for-free property holds on the erasure-coded substrate:
  // RAID-6's small-write path feeds the engine its deltas.
  std::vector<std::shared_ptr<BlockDevice>> members;
  for (int i = 0; i < 5; ++i) {
    members.push_back(std::make_shared<MemDisk>(32, kBs));
  }
  auto array_or = Raid6Array::create(std::move(members));
  ASSERT_TRUE(array_or.is_ok());
  auto array = std::shared_ptr<Raid6Array>(std::move(*array_or));

  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_unique<PrinsEngine>(array, config);

  auto replica_disk = std::make_shared<MemDisk>(array->num_blocks(), kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        ASSERT_TRUE(r->serve(*t).is_ok());
      });

  Rng rng(13);
  for (int i = 0; i < 80; ++i) {
    const Lba lba = rng.next_below(array->num_blocks());
    ASSERT_TRUE(engine->write(lba, random_block(9000 + i)).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());

  Bytes a(kBs), b(kBs);
  for (Lba lba = 0; lba < array->num_blocks(); ++lba) {
    ASSERT_TRUE(array->read(lba, a).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, b).is_ok());
    ASSERT_EQ(a, b) << "lba " << lba;
  }
  auto bad = array->scrub();
  ASSERT_TRUE(bad.is_ok());
  EXPECT_EQ(*bad, 0u);

  engine.reset();
  server.join();
}

TEST(EngineTest, WriteErrorsFromLocalDeviceSurfaceImmediately) {
  Rig rig(ReplicationPolicy::kPrins);
  Bytes block(kBs);
  EXPECT_EQ(rig.engine->write(kBlocks, block).code(), ErrorCode::kOutOfRange);
  Bytes bad_size(kBs / 2);
  EXPECT_EQ(rig.engine->write(0, bad_size).code(),
            ErrorCode::kInvalidArgument);
}

TEST(EngineTest, ReplicaFailureSurfacesViaDrain) {
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  replica_end->close();  // replica "crashes" before serving anything

  ASSERT_TRUE(engine->write(0, random_block(11)).is_ok());
  EXPECT_FALSE(engine->drain().is_ok());
}

TEST(EngineTest, PipelinedReplicationStaysConsistent) {
  // A deep pipeline window must preserve ordering and converge replicas,
  // including repeated writes to the same hot block within one window.
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.pipeline_depth = 16;
  auto engine = std::make_unique<PrinsEngine>(primary, config);

  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        ASSERT_TRUE(r->serve(*t).is_ok());
      });

  Rng rng(12);
  for (int i = 0; i < 400; ++i) {
    // Hot block 0 half the time: consecutive deltas in the same window.
    const Lba lba = rng.next_bool(0.5) ? 0 : rng.next_below(kBlocks);
    ASSERT_TRUE(engine->write(lba, random_block(8000 + i)).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_EQ(engine->metrics().acks, 400u);

  Bytes a(kBs), b(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(primary->read(lba, a).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, b).is_ok());
    ASSERT_EQ(a, b) << "lba " << lba;
  }
  engine.reset();
  server.join();
}

TEST(EngineTest, CoalescedReplicationConvergesOnHotBlock) {
  // With coalescing on and a stalled link, back-to-back deltas to the same
  // LBA XOR-fold in the outbox: far fewer wire messages, every write still
  // acknowledged, and the replica converges byte-for-byte.
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.coalesce_writes = true;
  auto engine = std::make_unique<PrinsEngine>(primary, config);

  // Capacity-1 pipe: the sender wedges on the first message until the
  // server starts, so the remaining writes must queue (and fold).
  // (Stop-and-wait only: a window deeper than the pipe would deadlock.)
  auto [primary_end, replica_end] = make_inproc_pair(1);
  auto metered = std::make_unique<TrafficMeter>(std::move(primary_end));
  TrafficMeter* meter = metered.get();
  engine->add_replica(std::move(metered));

  constexpr int kBurst = 60;
  for (int i = 0; i < kBurst; ++i) {
    // Hot block 5, plus an occasional cold block in between.
    ASSERT_TRUE(engine->write(5, random_block(4100 + i)).is_ok());
    if (i % 20 == 10) {
      ASSERT_TRUE(engine->write(40 + i, random_block(4200 + i)).is_ok());
    }
  }

  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        ASSERT_TRUE(r->serve(*t).is_ok());
      });
  ASSERT_TRUE(engine->drain().is_ok());

  const auto metrics = engine->metrics();
  EXPECT_EQ(metrics.writes, kBurst + 3u);
  EXPECT_EQ(metrics.acks, kBurst + 3u);  // folded ACKs cover every write
  // The hot block's deltas folded: only a handful of messages hit the
  // wire (a few may escape before the pipe wedges).
  EXPECT_LT(meter->sent().messages, kBurst / 2u);

  Bytes a(kBs), b(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(primary->read(lba, a).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, b).is_ok());
    ASSERT_EQ(a, b) << "lba " << lba;
  }
  engine.reset();
  server.join();
}

TEST(EngineTest, CoalescingLastWriteWinsForFullBlockPolicies) {
  // Traditional policies ship whole blocks, so folding is last-write-wins
  // instead of XOR — the replica must land on the final image.
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  EngineConfig config;
  config.policy = ReplicationPolicy::kTraditional;
  config.coalesce_writes = true;
  auto engine = std::make_unique<PrinsEngine>(primary, config);

  auto [primary_end, replica_end] = make_inproc_pair(1);
  auto metered = std::make_unique<TrafficMeter>(std::move(primary_end));
  TrafficMeter* meter = metered.get();
  engine->add_replica(std::move(metered));

  constexpr int kBurst = 50;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(engine->write(9, random_block(4300 + i)).is_ok());
  }

  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        ASSERT_TRUE(r->serve(*t).is_ok());
      });
  ASSERT_TRUE(engine->drain().is_ok());

  EXPECT_EQ(engine->metrics().acks, static_cast<std::uint64_t>(kBurst));
  EXPECT_LT(meter->sent().messages, kBurst / 2u);
  Bytes out(kBs);
  ASSERT_TRUE(replica_disk->read(9, out).is_ok());
  EXPECT_EQ(out, random_block(4300 + kBurst - 1));  // the final image
  engine.reset();
  server.join();
}

TEST(EngineTest, CoalescingWithMultipleReplicasConvergesAll) {
  // Each link folds independently (copy-on-write payloads): two stalled
  // replicas, both converge, and every write is acked on both.
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.coalesce_writes = true;
  auto engine = std::make_unique<PrinsEngine>(primary, config);

  struct Node {
    std::shared_ptr<MemDisk> disk;
    std::shared_ptr<ReplicaEngine> replica;
    std::unique_ptr<Transport> far_end;
    std::thread server;
  };
  std::vector<Node> nodes(2);
  for (auto& node : nodes) {
    node.disk = std::make_shared<MemDisk>(kBlocks, kBs);
    node.replica = std::make_shared<ReplicaEngine>(node.disk);
    auto [primary_end, replica_end] = make_inproc_pair(1);
    engine->add_replica(std::move(primary_end));
    node.far_end = std::move(replica_end);
  }

  Rng rng(21);
  constexpr int kWrites = 120;
  for (int i = 0; i < kWrites; ++i) {
    // Three hot blocks: plenty of same-LBA folding on both links.
    ASSERT_TRUE(
        engine->write(rng.next_below(3), random_block(4400 + i)).is_ok());
  }
  for (auto& node : nodes) {
    node.server = std::thread(
        [r = node.replica,
         t = std::shared_ptr<Transport>(std::move(node.far_end))] {
          ASSERT_TRUE(r->serve(*t).is_ok());
        });
  }
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_EQ(engine->metrics().acks, kWrites * 2u);

  Bytes a(kBs), b(kBs);
  for (auto& node : nodes) {
    for (Lba lba = 0; lba < kBlocks; ++lba) {
      ASSERT_TRUE(primary->read(lba, a).is_ok());
      ASSERT_TRUE(node.disk->read(lba, b).is_ok());
      ASSERT_EQ(a, b) << "lba " << lba;
    }
  }
  engine.reset();
  for (auto& node : nodes) node.server.join();
}

TEST(EngineTest, ReattachAndResyncAfterReplicaCrash) {
  // The full failure-recovery story: replica dies mid-stream, writes keep
  // landing locally, a fresh link is attached, and verify_and_repair
  // brings the (stale but intact) replica device back in sync.
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_unique<PrinsEngine>(primary, config);

  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);

  auto [first_primary_end, first_replica_end] = make_inproc_pair();
  engine->add_replica(std::move(first_primary_end));
  EXPECT_EQ(engine->replica_count(), 1u);
  std::thread first_server(
      [r = replica,
       t = std::shared_ptr<Transport>(std::move(first_replica_end))] {
        (void)r->serve(*t);
      });

  // Phase 1: healthy replication.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine->write(i, random_block(100 + i)).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());

  // Phase 2: the replica "crashes" — its serve loop ends.
  // (Simulate by closing the engine-side transport via reattach of a
  // dead pair whose far end is immediately dropped.)
  {
    auto [dead_primary_end, dead_replica_end] = make_inproc_pair();
    dead_replica_end->close();
    ASSERT_TRUE(
        engine->reattach_replica(0, std::move(dead_primary_end)).is_ok());
  }
  first_server.join();

  // Writes during the outage land locally; replication reports failure.
  for (int i = 20; i < 40; ++i) {
    (void)engine->write(i, random_block(200 + i));
  }
  EXPECT_FALSE(engine->drain().is_ok());

  // Phase 3: reattach a live link to the same (stale) replica device.
  auto [second_primary_end, second_replica_end] = make_inproc_pair();
  ASSERT_TRUE(
      engine->reattach_replica(0, std::move(second_primary_end)).is_ok());
  std::thread second_server(
      [r = replica,
       t = std::shared_ptr<Transport>(std::move(second_replica_end))] {
        (void)r->serve(*t);
      });

  // New writes flow again...
  for (int i = 40; i < 50; ++i) {
    ASSERT_TRUE(engine->write(i, random_block(300 + i)).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());

  // ...and the checksum resync repairs exactly the outage window.
  auto repaired = engine->verify_and_repair(0, kBlocks);
  ASSERT_TRUE(repaired.is_ok()) << repaired.status().to_string();
  EXPECT_GT(*repaired, 0u);
  EXPECT_LE(*repaired, 20u);

  Bytes a(kBs), b(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(primary->read(lba, a).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, b).is_ok());
    ASSERT_EQ(a, b) << "lba " << lba;
  }
  EXPECT_FALSE(engine->reattach_replica(5, nullptr).is_ok());

  engine.reset();
  second_server.join();
}

TEST(EngineTest, ConcurrentWritersStayConsistent) {
  // Many application threads hammering overlapping blocks: the engine
  // must serialize the read-old/diff/enqueue section so the replica's
  // XOR chain telescopes correctly.
  Rig rig(ReplicationPolicy::kPrins);
  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 150;
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(7000 + t);
      Bytes block(kBs);
      for (int i = 0; i < kWritesPerThread; ++i) {
        rng.fill(block);
        // Deliberately contend on a few hot blocks.
        const Lba lba = rng.next_below(8);
        if (!rig.engine->write(lba, block).is_ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(rig.engine->drain().is_ok());
  EXPECT_EQ(rig.engine->metrics().writes,
            static_cast<std::uint64_t>(kThreads) * kWritesPerThread);
  EXPECT_TRUE(rig.devices_match());
}

TEST(EngineTest, DeltaResyncShipsOnlyFoldedDeltas) {
  // The parity-log resync: after an outage, the replica gets ONE folded
  // delta per stale block — no full blocks, no checksum scan.
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.keep_trap_log = true;
  auto engine = std::make_unique<PrinsEngine>(primary, config);

  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto [first_primary_end, first_replica_end] = make_inproc_pair();
  auto first_meter = std::make_unique<TrafficMeter>(std::move(first_primary_end));
  engine->add_replica(std::move(first_meter));
  std::thread first_server(
      [r = replica,
       t = std::shared_ptr<Transport>(std::move(first_replica_end))] {
        (void)r->serve(*t);
      });

  // Healthy phase: several overwrites of a few hot blocks.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(engine->write(i % 5, random_block(100 + i)).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());

  // Outage: kill the link; more writes pile up in the parity log.
  {
    auto [dead_primary_end, dead_replica_end] = make_inproc_pair();
    dead_replica_end->close();
    ASSERT_TRUE(
        engine->reattach_replica(0, std::move(dead_primary_end)).is_ok());
  }
  first_server.join();
  for (int i = 0; i < 40; ++i) {
    (void)engine->write(10 + (i % 8), random_block(200 + i));  // 8 stale blocks
  }
  (void)engine->drain();

  // Reconnect and delta-resync.
  auto [second_primary_end, second_replica_end] = make_inproc_pair();
  auto second_meter =
      std::make_unique<TrafficMeter>(std::move(second_primary_end));
  TrafficMeter* meter = second_meter.get();
  ASSERT_TRUE(
      engine->reattach_replica(0, std::move(second_meter)).is_ok());
  std::thread second_server(
      [r = replica,
       t = std::shared_ptr<Transport>(std::move(second_replica_end))] {
        (void)r->serve(*t);
      });

  auto resynced = engine->resync_replica(0);
  ASSERT_TRUE(resynced.is_ok()) << resynced.status().to_string();
  // 8 distinct stale blocks (the 40 missed writes hit blocks 10..17); a
  // few early blocks may also resend if the outage raced the last acks.
  EXPECT_GE(*resynced, 8u);
  EXPECT_LE(*resynced, 13u);
  // One folded delta per stale block, plus the kHello that anchors the
  // fold base at the replica's true applied position.
  EXPECT_EQ(meter->sent().messages, *resynced + 1);

  // Replica now matches everywhere.
  Bytes a(kBs), b(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(primary->read(lba, a).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, b).is_ok());
    ASSERT_EQ(a, b) << "lba " << lba;
  }
  // Idempotent: a second resync finds nothing stale.
  auto again = engine->resync_replica(0);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(*again, 0u);

  engine.reset();
  second_server.join();
}

TEST(EngineTest, ResyncRequiresTrapLog) {
  Rig rig(ReplicationPolicy::kPrins);
  EXPECT_EQ(rig.engine->resync_replica(0).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(EngineTest, LocalDiskFaultSurfacesOnWrite) {
  // A failing local device must fail the write before anything is
  // replicated — no phantom updates reach the replica.
  auto inner = std::make_shared<MemDisk>(kBlocks, kBs);
  FaultyDisk::Config faults;
  faults.write_error_p = 1.0;
  auto faulty = std::make_shared<FaultyDisk>(inner, faults);
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  auto engine = std::make_unique<PrinsEngine>(faulty, config);
  auto [primary_end, replica_end] = make_inproc_pair();
  auto meter = std::make_unique<TrafficMeter>(std::move(primary_end));
  TrafficMeter* traffic = meter.get();
  engine->add_replica(std::move(meter));

  EXPECT_FALSE(engine->write(0, random_block(1)).is_ok());
  ASSERT_TRUE(engine->drain().is_ok());  // nothing was enqueued
  EXPECT_EQ(traffic->sent().messages, 0u);
  EXPECT_EQ(engine->metrics().writes, 0u);
  replica_end->close();
}

TEST(EngineTest, ReplicaDeviceFaultFailsTheSession) {
  // If the replica's local device dies, its serve loop must error out and
  // the primary must see the failure at drain time.
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  EngineConfig config;
  config.policy = ReplicationPolicy::kTraditional;
  auto engine = std::make_unique<PrinsEngine>(primary, config);

  auto inner = std::make_shared<MemDisk>(kBlocks, kBs);
  FaultyDisk::Config faults;
  faults.write_error_p = 1.0;
  auto faulty = std::make_shared<FaultyDisk>(inner, faults);
  auto replica = std::make_shared<ReplicaEngine>(faulty);
  auto [primary_end, replica_end] = make_inproc_pair();
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        EXPECT_FALSE(r->serve(*t).is_ok());  // apply fails -> serve errors
      });

  ASSERT_TRUE(engine->write(0, random_block(2)).is_ok());
  EXPECT_FALSE(engine->drain().is_ok());
  engine.reset();
  server.join();
}

TEST(EngineTest, GarbageOnTheWireIsRejectedNotApplied) {
  // A man-in-the-middle (or bit rot) corrupting a replication message
  // must not corrupt the replica: the CRC rejects it, the replica NAKs so
  // the primary can retransmit, and the session survives.
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto [sender, replica_end] = make_inproc_pair();
  std::thread server(
      [r = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        EXPECT_TRUE(r->serve(*t).is_ok());  // clean disconnect, not an error
      });

  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = ReplicationPolicy::kTraditional;
  msg.block_size = kBs;
  msg.lba = 3;
  msg.payload = encode_frame(codec_for(CodecId::kNull), random_block(3));
  Bytes wire = msg.encode();
  wire[wire.size() / 2] ^= 0xFF;  // corrupt in flight
  ASSERT_TRUE(sender->send(wire).is_ok());

  auto reply = sender->recv();
  ASSERT_TRUE(reply.is_ok());
  auto nak = ReplicationMessage::decode(*reply);
  ASSERT_TRUE(nak.is_ok());
  EXPECT_EQ(nak->kind, MessageKind::kNak);

  sender->close();
  server.join();

  Bytes out(kBs);
  ASSERT_TRUE(replica_disk->read(3, out).is_ok());
  EXPECT_TRUE(all_zero(out));  // the corrupt write never landed
  EXPECT_EQ(replica->metrics().writes_applied, 0u);
  EXPECT_EQ(replica->metrics().naks_sent, 1u);
}

TEST(ReplicaEngineTest, RejectsReplyKindMessages) {
  auto disk = std::make_shared<MemDisk>(8, kBs);
  ReplicaEngine replica(disk);
  ReplicationMessage msg;
  msg.kind = MessageKind::kAck;
  EXPECT_FALSE(replica.apply(msg).is_ok());
}

TEST(ReplicaEngineTest, RejectsBlockSizeMismatch) {
  auto disk = std::make_shared<MemDisk>(8, kBs);
  ReplicaEngine replica(disk);
  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = ReplicationPolicy::kTraditional;
  msg.block_size = kBs * 2;
  msg.payload = encode_frame(codec_for(CodecId::kNull), Bytes(kBs * 2, 1));
  EXPECT_FALSE(replica.apply(msg).is_ok());
}

TEST(ReplicaEngineTest, RejectsCorruptPayload) {
  // A payload whose codec frame fails its own integrity check is bounced
  // back as a NAK (echoing sequence + lba) instead of killing the session;
  // the device is never touched.
  auto disk = std::make_shared<MemDisk>(8, kBs);
  ReplicaEngine replica(disk);
  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = ReplicationPolicy::kTraditional;
  msg.block_size = kBs;
  msg.sequence = 42;
  msg.lba = 5;
  msg.payload = encode_frame(codec_for(CodecId::kNull), Bytes(kBs, 1));
  msg.payload[8] ^= 0xFF;  // corrupt the codec frame body
  auto reply = replica.apply(msg);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply->kind, MessageKind::kNak);
  EXPECT_EQ(reply->sequence, 42u);
  EXPECT_EQ(reply->lba, 5u);
  EXPECT_EQ(replica.metrics().writes_applied, 0u);
  EXPECT_EQ(replica.metrics().naks_sent, 1u);

  Bytes out(kBs);
  ASSERT_TRUE(disk->read(5, out).is_ok());
  EXPECT_TRUE(all_zero(out));
}

TEST(ReplicaEngineTest, BarrierAcksWithoutWriting) {
  auto disk = std::make_shared<MemDisk>(8, kBs);
  ReplicaEngine replica(disk);
  ReplicationMessage msg;
  msg.kind = MessageKind::kBarrier;
  msg.sequence = 77;
  auto ack = replica.apply(msg);
  ASSERT_TRUE(ack.is_ok());
  EXPECT_EQ(ack->kind, MessageKind::kAck);
  EXPECT_EQ(ack->sequence, 77u);
  EXPECT_EQ(replica.metrics().writes_applied, 0u);
}

}  // namespace
}  // namespace prins
