// End-to-end data integrity: IntegrityDisk checksum verification, the
// write-intent log and crash-atomic replica apply, NAK-driven full-block
// repair, the scrub-and-repair escalation (RAID reconstruction, replica
// pull, quarantine), and a corruption/torn-write soak.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "block/faulty_disk.h"
#include "block/integrity_disk.h"
#include "block/mem_disk.h"
#include "codec/codec.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "prins/engine.h"
#include "prins/intent_log.h"
#include "prins/replica.h"
#include "prins/scrubber.h"
#include "raid/raid_array.h"

namespace prins {
namespace {

constexpr std::uint32_t kBs = 512;
constexpr std::uint64_t kBlocks = 64;

std::string temp_path(const char* tag) {
  static int counter = 0;
  return (std::filesystem::temp_directory_path() /
          ("prins_integrity_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(counter++)))
      .string();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* tag) : path(temp_path(tag)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

Bytes random_block(std::uint64_t seed, std::size_t n = kBs) {
  Rng rng(seed);
  Bytes b(n);
  rng.fill(b);
  return b;
}

// ---- IntegrityDisk -------------------------------------------------------------

TEST(IntegrityDiskTest, DetectsBitRotAsTypedCorruption) {
  auto inner = std::make_shared<MemDisk>(kBlocks, kBs);
  auto opened = IntegrityDisk::open(inner);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  auto& disk = **opened;

  const Bytes data = random_block(1);
  ASSERT_TRUE(disk.write(3, data).is_ok());
  Bytes out(kBs);
  ASSERT_TRUE(disk.read(3, out).is_ok());
  EXPECT_EQ(out, data);

  // Rot a byte beneath the checksum layer.
  Bytes rotten = data;
  rotten[100] ^= 0x01;
  ASSERT_TRUE(inner->write(3, rotten).is_ok());
  EXPECT_EQ(disk.read(3, out).code(), ErrorCode::kDataCorruption);

  const auto stats = disk.stats();
  EXPECT_EQ(stats.mismatches, 1u);
  EXPECT_GE(stats.blocks_verified, 1u);

  // A rewrite re-baselines the block.
  ASSERT_TRUE(disk.write(3, rotten).is_ok());
  EXPECT_TRUE(disk.read(3, out).is_ok());
}

TEST(IntegrityDiskTest, UntrackedBlocksAreAdoptedOnFirstRead) {
  auto inner = std::make_shared<MemDisk>(kBlocks, kBs);
  ASSERT_TRUE(inner->write(5, random_block(2)).is_ok());
  auto opened = IntegrityDisk::open(inner);
  ASSERT_TRUE(opened.is_ok());
  auto& disk = **opened;

  EXPECT_FALSE(disk.tracked(5));
  Bytes out(kBs);
  ASSERT_TRUE(disk.read(5, out).is_ok());
  EXPECT_TRUE(disk.tracked(5));
  EXPECT_EQ(disk.stats().blocks_adopted, 1u);

  // From now on the adopted baseline is enforced.
  ASSERT_TRUE(inner->write(5, random_block(3)).is_ok());
  EXPECT_EQ(disk.read(5, out).code(), ErrorCode::kDataCorruption);
}

TEST(IntegrityDiskTest, SidecarPersistsChecksumsAcrossReopen) {
  TempFile sidecar("sidecar");
  auto inner = std::make_shared<MemDisk>(kBlocks, kBs);
  const Bytes data = random_block(4);
  {
    auto opened = IntegrityDisk::open(inner, {sidecar.path});
    ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
    ASSERT_TRUE((*opened)->write(7, data).is_ok());
    ASSERT_TRUE((*opened)->flush().is_ok());
  }
  // Corrupt while the checksum layer is "down".
  Bytes rotten = data;
  rotten[0] ^= 0xFF;
  ASSERT_TRUE(inner->write(7, rotten).is_ok());

  auto reopened = IntegrityDisk::open(inner, {sidecar.path});
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  EXPECT_TRUE((*reopened)->tracked(7));
  Bytes out(kBs);
  EXPECT_EQ((*reopened)->read(7, out).code(), ErrorCode::kDataCorruption);
}

TEST(IntegrityDiskTest, TornSidecarPageDegradesToUntracked) {
  TempFile sidecar("torn");
  auto inner = std::make_shared<MemDisk>(kBlocks, kBs);
  {
    auto opened = IntegrityDisk::open(inner, {sidecar.path});
    ASSERT_TRUE(opened.is_ok());
    ASSERT_TRUE((*opened)->write(2, random_block(5)).is_ok());
    ASSERT_TRUE((*opened)->flush().is_ok());
  }
  // Tear the CRC page itself (flip a byte past the 16-byte header): the
  // page must fail its own checksum and be dropped, not believed.
  {
    std::FILE* f = std::fopen(sidecar.path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 200, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 200, SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto reopened = IntegrityDisk::open(inner, {sidecar.path});
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  EXPECT_EQ((*reopened)->stats().pages_dropped, 1u);
  EXPECT_FALSE((*reopened)->tracked(2));
  Bytes out(kBs);
  EXPECT_TRUE((*reopened)->read(2, out).is_ok());  // adopted, not failed
}

TEST(IntegrityDiskTest, SidecarGeometryMismatchRejected) {
  TempFile sidecar("geom");
  {
    auto inner = std::make_shared<MemDisk>(kBlocks, kBs);
    auto opened = IntegrityDisk::open(inner, {sidecar.path});
    ASSERT_TRUE(opened.is_ok());
    ASSERT_TRUE((*opened)->flush().is_ok());
  }
  auto other = std::make_shared<MemDisk>(kBlocks * 2, kBs);
  auto reopened = IntegrityDisk::open(other, {sidecar.path});
  EXPECT_EQ(reopened.status().code(), ErrorCode::kInvalidArgument);
}

// ---- WriteIntentLog ------------------------------------------------------------

TEST(WriteIntentLogTest, IntentsSurviveReopen) {
  TempFile file("intents");
  {
    auto log = WriteIntentLog::open(file.path);
    ASSERT_TRUE(log.is_ok()) << log.status().to_string();
    ASSERT_TRUE((*log)->record(1, 10, 0xAAAA).is_ok());
    ASSERT_TRUE((*log)->record(2, 11, 0xBBBB).is_ok());
  }
  auto log = WriteIntentLog::open(file.path);
  ASSERT_TRUE(log.is_ok());
  const auto pending = (*log)->pending();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].sequence, 1u);
  EXPECT_EQ(pending[0].lba, 10u);
  EXPECT_EQ(pending[0].crc, 0xAAAAu);
  EXPECT_EQ(pending[1].sequence, 2u);
}

TEST(WriteIntentLogTest, TornTailRecordDropped) {
  TempFile file("torn_intent");
  std::uintmax_t after_first = 0;
  {
    auto log = WriteIntentLog::open(file.path);
    ASSERT_TRUE(log.is_ok());
    ASSERT_TRUE((*log)->record(1, 10, 0x1111).is_ok());
    after_first = std::filesystem::file_size(file.path);
    ASSERT_TRUE((*log)->record(2, 11, 0x2222).is_ok());
  }
  const std::uintmax_t full = std::filesystem::file_size(file.path);
  for (std::uintmax_t cut = after_first; cut < full; ++cut) {
    const std::string copy = file.path + ".cut";
    std::filesystem::copy_file(
        file.path, copy, std::filesystem::copy_options::overwrite_existing);
    ASSERT_EQ(::truncate(copy.c_str(), static_cast<off_t>(cut)), 0);
    auto log = WriteIntentLog::open(copy);
    ASSERT_TRUE(log.is_ok()) << "cut at " << cut;
    ASSERT_EQ((*log)->pending_count(), 1u) << "cut at " << cut;
    EXPECT_EQ((*log)->pending()[0].sequence, 1u);
    std::remove(copy.c_str());
  }
}

TEST(WriteIntentLogTest, CheckpointClearsIntents) {
  TempFile file("ckpt");
  auto log = WriteIntentLog::open(file.path);
  ASSERT_TRUE(log.is_ok());
  ASSERT_TRUE((*log)->record(1, 0, 1).is_ok());
  ASSERT_TRUE((*log)->record(2, 1, 2).is_ok());
  ASSERT_TRUE((*log)->checkpoint().is_ok());
  EXPECT_EQ((*log)->pending_count(), 0u);
  // Still appendable, and the truncation survives reopen.
  ASSERT_TRUE((*log)->record(3, 2, 3).is_ok());
  log->reset();
  auto reopened = WriteIntentLog::open(file.path);
  ASSERT_TRUE(reopened.is_ok());
  ASSERT_EQ((*reopened)->pending_count(), 1u);
  EXPECT_EQ((*reopened)->pending()[0].sequence, 3u);
}

// ---- Crash-atomic replica apply ------------------------------------------------

ReplicationMessage parity_write(std::uint64_t seq, Lba lba, ByteSpan delta) {
  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = ReplicationPolicy::kPrins;
  msg.block_size = kBs;
  msg.lba = lba;
  msg.sequence = seq;
  msg.timestamp_us = seq;
  msg.payload = encode_frame(payload_codec(ReplicationPolicy::kPrins), delta);
  return msg;
}

ReplicationMessage full_repair(std::uint64_t seq, Lba lba, ByteSpan block) {
  ReplicationMessage msg;
  msg.kind = MessageKind::kRepairBlock;
  msg.block_size = kBs;
  msg.lba = lba;
  msg.sequence = seq;
  msg.timestamp_us = seq;
  msg.payload = encode_frame(codec_for(CodecId::kLz), block);
  return msg;
}

Bytes xor_blocks(const Bytes& a, const Bytes& b) {
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

TEST(CrashAtomicApply, TornApplyDetectedAndRepairedInFull) {
  TempFile intents("crash_intents");
  auto mem = std::make_shared<MemDisk>(16, kBs);
  auto faulty = std::make_shared<FaultyDisk>(mem, FaultyDisk::Config{});

  const Bytes b1 = random_block(21);
  Bytes b2 = b1;
  for (Byte& x : b2) x ^= 0xFF;  // differs in EVERY byte: any tear detectable

  {
    auto log = WriteIntentLog::open(intents.path);
    ASSERT_TRUE(log.is_ok());
    ReplicaConfig config;
    config.intent_log = std::shared_ptr<WriteIntentLog>(std::move(*log));
    ReplicaEngine replica(faulty, config);

    auto r1 = replica.apply(parity_write(1, 5, b1));  // old is zero: delta=b1
    ASSERT_TRUE(r1.is_ok());
    ASSERT_EQ(r1->kind, MessageKind::kAck);

    // Power fails during the in-place apply of seq 2: the read of A_old is
    // op 1, the write is op 2 — a byte prefix of A_new persists.
    faulty->crash_after(2);
    auto r2 = replica.apply(parity_write(2, 5, xor_blocks(b1, b2)));
    ASSERT_FALSE(r2.is_ok());
    EXPECT_EQ(r2.status().code(), ErrorCode::kIoError);
    EXPECT_EQ(faulty->torn_writes(), 1u);
  }  // replica and its intent log die with the "machine"

  // The torn block now holds a b2-prefix/b1-suffix hybrid.
  Bytes stored(kBs);
  ASSERT_TRUE(mem->read(5, stored).is_ok());
  EXPECT_NE(stored, b1);
  EXPECT_NE(stored, b2);

  // Restart: replay the intent log.
  faulty->set_dead(false);
  auto log = WriteIntentLog::open(intents.path);
  ASSERT_TRUE(log.is_ok());
  ASSERT_EQ((*log)->pending_count(), 2u);  // both intents survived the crash
  ReplicaConfig config;
  config.intent_log = std::shared_ptr<WriteIntentLog>(std::move(*log));
  ReplicaEngine replica(faulty, config);

  auto damaged = replica.recover_intents();
  ASSERT_TRUE(damaged.is_ok()) << damaged.status().to_string();
  ASSERT_EQ(damaged->size(), 1u);
  EXPECT_EQ((*damaged)[0], 5u);
  EXPECT_EQ(replica.metrics().torn_blocks_detected, 1u);

  // The primary replays the un-acked delta: it must be bounced with an
  // explicit ask for the full block, NOT applied (XOR onto a torn base
  // diverges forever).
  auto replay = replica.apply(parity_write(2, 5, xor_blocks(b1, b2)));
  ASSERT_TRUE(replay.is_ok());
  ASSERT_EQ(replay->kind, MessageKind::kNak);
  ASSERT_FALSE(replay->payload.empty());
  EXPECT_EQ(replay->payload[0], static_cast<Byte>(NakReason::kNeedFullBlock));
  EXPECT_EQ(replica.metrics().full_repairs_requested, 1u);

  // The full-block repair lands, clears the damage, and CRC-matches.
  auto repaired = replica.apply(full_repair(2, 5, b2));
  ASSERT_TRUE(repaired.is_ok());
  EXPECT_EQ(repaired->kind, MessageKind::kAck);
  EXPECT_TRUE(replica.damaged_blocks().empty());
  ASSERT_TRUE(mem->read(5, stored).is_ok());
  EXPECT_EQ(crc32c(stored), crc32c(b2));

  // Parity flows again.
  const Bytes b3 = random_block(23);
  auto r3 = replica.apply(parity_write(3, 5, xor_blocks(b2, b3)));
  ASSERT_TRUE(r3.is_ok());
  EXPECT_EQ(r3->kind, MessageKind::kAck);
  ASSERT_TRUE(mem->read(5, stored).is_ok());
  EXPECT_EQ(stored, b3);
}

TEST(CrashAtomicApply, CompletedApplyIsDeduplicatedAfterRestart) {
  TempFile intents("dedup_intents");
  auto mem = std::make_shared<MemDisk>(16, kBs);
  const Bytes b1 = random_block(31);
  const Bytes b2 = random_block(32);

  {
    auto log = WriteIntentLog::open(intents.path);
    ASSERT_TRUE(log.is_ok());
    ReplicaConfig config;
    config.intent_log = std::shared_ptr<WriteIntentLog>(std::move(*log));
    ReplicaEngine replica(mem, config);
    ASSERT_TRUE(replica.apply(parity_write(1, 5, b1)).is_ok());
    ASSERT_TRUE(replica.apply(parity_write(2, 5, xor_blocks(b1, b2))).is_ok());
  }  // crash after the applies completed but before any checkpoint

  auto log = WriteIntentLog::open(intents.path);
  ASSERT_TRUE(log.is_ok());
  ReplicaConfig config;
  config.intent_log = std::shared_ptr<WriteIntentLog>(std::move(*log));
  ReplicaEngine replica(mem, config);
  auto damaged = replica.recover_intents();
  ASSERT_TRUE(damaged.is_ok());
  EXPECT_TRUE(damaged->empty());  // contents match the newest intent

  // The primary replays both un-acked writes; re-XOR would undo them.
  ASSERT_TRUE(replica.apply(parity_write(1, 5, b1)).is_ok());
  ASSERT_TRUE(replica.apply(parity_write(2, 5, xor_blocks(b1, b2))).is_ok());
  EXPECT_EQ(replica.metrics().duplicates_dropped, 2u);
  Bytes stored(kBs);
  ASSERT_TRUE(mem->read(5, stored).is_ok());
  EXPECT_EQ(stored, b2);
}

// ---- Scrubber ------------------------------------------------------------------

TEST(ScrubberTest, RepairsViaRaidReconstruction) {
  // IntegrityDisk over a RAID-4: at-rest rot in a data member fails the
  // logical read's checksum; repair_block rebuilds the member from parity
  // without disturbing the (still correct) parity column.
  std::vector<std::shared_ptr<BlockDevice>> members;
  for (int i = 0; i < 3; ++i) {
    members.push_back(std::make_shared<MemDisk>(32, kBs));
  }
  auto array = RaidArray::create(RaidLevel::kRaid4, members);
  ASSERT_TRUE(array.is_ok()) << array.status().to_string();
  std::shared_ptr<RaidArray> raid = std::move(*array);
  auto opened = IntegrityDisk::open(raid);
  ASSERT_TRUE(opened.is_ok());
  std::shared_ptr<IntegrityDisk> disk = std::move(*opened);

  std::vector<Bytes> written(disk->num_blocks());
  for (Lba lba = 0; lba < disk->num_blocks(); ++lba) {
    written[lba] = random_block(400 + lba);
    ASSERT_TRUE(disk->write(lba, written[lba]).is_ok());
  }
  // Rot three blocks of data member 0 (RAID-4 keeps parity on the last
  // member, so member 0 is pure data).
  for (Lba member_block : {0u, 3u, 9u}) {
    Bytes garbage = random_block(900 + member_block);
    ASSERT_TRUE(members[0]->write(member_block, garbage).is_ok());
  }
  std::size_t failing = 0;
  Bytes out(kBs);
  for (Lba lba = 0; lba < disk->num_blocks(); ++lba) {
    if (disk->read(lba, out).code() == ErrorCode::kDataCorruption) ++failing;
  }
  ASSERT_EQ(failing, 3u);

  Scrubber scrubber(disk);
  scrubber.add_source(RepairSource{
      "raid",
      [&](Lba lba, MutByteSpan buf) { return raid->repair_block(lba, buf); },
      /*in_place=*/true});
  auto pass = scrubber.run_pass();
  ASSERT_TRUE(pass.is_ok()) << pass.status().to_string();
  EXPECT_EQ(pass->blocks_scanned, disk->num_blocks());
  EXPECT_EQ(pass->corruptions_found, 3u);
  EXPECT_EQ(pass->repaired, 3u);
  EXPECT_EQ(pass->repaired_by.at("raid"), 3u);
  EXPECT_EQ(pass->quarantined, 0u);
  EXPECT_TRUE(scrubber.quarantined().empty());

  for (Lba lba = 0; lba < disk->num_blocks(); ++lba) {
    ASSERT_TRUE(disk->read(lba, out).is_ok()) << "lba " << lba;
    EXPECT_EQ(out, written[lba]) << "lba " << lba;
  }
  // A second pass over the repaired device is clean.
  auto second = scrubber.run_pass();
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second->corruptions_found, 0u);
  EXPECT_EQ(scrubber.stats().corruptions_found, 3u);  // cumulative
}

TEST(ScrubberTest, QuarantinesWhenEverySourceFailsThenRecovers) {
  auto inner = std::make_shared<MemDisk>(kBlocks, kBs);
  auto opened = IntegrityDisk::open(inner);
  ASSERT_TRUE(opened.is_ok());
  std::shared_ptr<IntegrityDisk> disk = std::move(*opened);

  const Bytes good = random_block(50);
  ASSERT_TRUE(disk->write(9, good).is_ok());
  ASSERT_TRUE(inner->write(9, random_block(51)).is_ok());  // rot it

  Scrubber scrubber(disk);
  scrubber.add_source(RepairSource{
      "dead-source",
      [](Lba, MutByteSpan) { return unavailable("source is down"); },
      /*in_place=*/false});
  auto pass = scrubber.run_pass();
  ASSERT_TRUE(pass.is_ok());
  EXPECT_EQ(pass->corruptions_found, 1u);
  EXPECT_EQ(pass->repaired, 0u);
  EXPECT_EQ(pass->quarantined, 1u);
  ASSERT_EQ(scrubber.quarantined().size(), 1u);
  EXPECT_EQ(scrubber.quarantined()[0], 9u);

  // The source comes back: the next pass retries the quarantined block.
  scrubber.add_source(RepairSource{
      "backup",
      [&](Lba lba, MutByteSpan buf) {
        EXPECT_EQ(lba, 9u);
        std::copy(good.begin(), good.end(), buf.begin());
        return Status::ok();
      },
      /*in_place=*/false});
  auto retry = scrubber.run_pass();
  ASSERT_TRUE(retry.is_ok());
  EXPECT_EQ(retry->repaired, 1u);
  EXPECT_EQ(retry->repaired_by.at("backup"), 1u);
  EXPECT_TRUE(scrubber.quarantined().empty());
  Bytes out(kBs);
  ASSERT_TRUE(disk->read(9, out).is_ok());
  EXPECT_EQ(out, good);
}

// ---- Engine integration --------------------------------------------------------

/// Primary (IntegrityDisk over MemDisk) + one replica whose device stack the
/// test chooses; in-proc link, background serve.
struct IntegrityRig {
  std::shared_ptr<MemDisk> primary_mem;
  std::shared_ptr<FaultyDisk> primary_faulty;
  std::shared_ptr<IntegrityDisk> primary_disk;
  std::shared_ptr<MemDisk> replica_mem;
  std::shared_ptr<FaultyDisk> replica_faulty;
  std::shared_ptr<IntegrityDisk> replica_disk;
  std::shared_ptr<ReplicaEngine> replica;
  std::unique_ptr<PrinsEngine> engine;
  std::thread server;

  explicit IntegrityRig(std::uint64_t blocks, EngineConfig config = {}) {
    primary_mem = std::make_shared<MemDisk>(blocks, kBs);
    primary_faulty =
        std::make_shared<FaultyDisk>(primary_mem, FaultyDisk::Config{});
    auto p = IntegrityDisk::open(primary_faulty);
    EXPECT_TRUE(p.is_ok());
    primary_disk = std::move(*p);

    replica_mem = std::make_shared<MemDisk>(blocks, kBs);
    replica_faulty =
        std::make_shared<FaultyDisk>(replica_mem, FaultyDisk::Config{});
    auto r = IntegrityDisk::open(replica_faulty);
    EXPECT_TRUE(r.is_ok());
    replica_disk = std::move(*r);
    replica = std::make_shared<ReplicaEngine>(replica_disk);

    engine = std::make_unique<PrinsEngine>(primary_disk, config);
    auto [primary_end, replica_end] = make_inproc_pair();
    engine->add_replica(std::move(primary_end));
    server = std::thread(
        [r2 = replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
          EXPECT_TRUE(r2->serve(*t).is_ok());
        });
  }

  ~IntegrityRig() {
    engine.reset();
    if (server.joinable()) server.join();
  }

  bool mems_match() const {
    Bytes a(kBs), b(kBs);
    for (Lba lba = 0; lba < primary_mem->num_blocks(); ++lba) {
      EXPECT_TRUE(primary_mem->read(lba, a).is_ok());
      EXPECT_TRUE(replica_mem->read(lba, b).is_ok());
      if (a != b) return false;
    }
    return true;
  }
};

TEST(EngineIntegration, NakConvertsQueuedDeltaToFullBlockRepair) {
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.keep_trap_log = true;
  IntegrityRig rig(16, config);

  ASSERT_TRUE(rig.engine->write(7, random_block(60)).is_ok());
  ASSERT_TRUE(rig.engine->drain().is_ok());
  ASSERT_TRUE(rig.mems_match());

  // Rot the replica's stored copy at rest: the next parity delta cannot
  // apply there, and a resend can never help.
  ASSERT_TRUE(rig.replica_faulty->corrupt_block(7, 42).is_ok());

  const Bytes next = random_block(61);
  ASSERT_TRUE(rig.engine->write(7, next).is_ok());
  ASSERT_TRUE(rig.engine->drain().is_ok());
  EXPECT_TRUE(rig.mems_match());

  EXPECT_GE(rig.engine->metrics().nak_full_repairs, 1u);
  const auto rm = rig.replica->metrics();
  EXPECT_GE(rm.full_repairs_requested, 1u);
  EXPECT_GE(rm.repairs, 1u);
  EXPECT_TRUE(rig.replica->damaged_blocks().empty());
  EXPECT_GE(rig.replica_disk->stats().mismatches, 1u);
}

TEST(EngineIntegration, ScrubPullsGoodBlocksFromReplica) {
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  IntegrityRig rig(32, config);

  for (Lba lba = 0; lba < 32; ++lba) {
    ASSERT_TRUE(rig.engine->write(lba, random_block(70 + lba)).is_ok());
  }
  ASSERT_TRUE(rig.engine->drain().is_ok());
  ASSERT_TRUE(rig.mems_match());

  for (Lba lba : {2u, 11u, 30u}) {
    ASSERT_TRUE(rig.primary_faulty->corrupt_block(lba, 5).is_ok());
  }

  auto pass = rig.engine->scrub();
  ASSERT_TRUE(pass.is_ok()) << pass.status().to_string();
  EXPECT_EQ(pass->corruptions_found, 3u);
  EXPECT_EQ(pass->repaired, 3u);
  EXPECT_EQ(pass->repaired_by.at("replica"), 3u);
  EXPECT_EQ(pass->quarantined, 0u);
  EXPECT_TRUE(rig.mems_match());
  EXPECT_GE(rig.replica->metrics().repair_reads_served, 3u);

  const auto metrics = rig.engine->metrics();
  EXPECT_EQ(metrics.scrub_passes, 1u);
  EXPECT_EQ(metrics.scrub_corruptions, 3u);
  EXPECT_EQ(metrics.scrub_repaired, 3u);
  EXPECT_EQ(metrics.scrub_quarantined, 0u);

  // A second pass over the repaired device is clean.
  auto second = rig.engine->scrub();
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second->corruptions_found, 0u);
}

TEST(EngineIntegration, ScrubQuarantinesWhenReplicaCopyIsAlsoDamaged) {
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  IntegrityRig rig(16, config);

  ASSERT_TRUE(rig.engine->write(4, random_block(80)).is_ok());
  ASSERT_TRUE(rig.engine->drain().is_ok());

  // Both copies rot: the primary fails its own checksum, and the replica's
  // checksum layer refuses to serve its copy (NAK on the read-block pull).
  ASSERT_TRUE(rig.primary_faulty->corrupt_block(4, 1).is_ok());
  ASSERT_TRUE(rig.replica_faulty->corrupt_block(4, 2).is_ok());

  auto pass = rig.engine->scrub();
  ASSERT_TRUE(pass.is_ok()) << pass.status().to_string();
  EXPECT_EQ(pass->corruptions_found, 1u);
  EXPECT_EQ(pass->repaired, 0u);
  EXPECT_EQ(pass->quarantined, 1u);
  EXPECT_EQ(rig.engine->metrics().scrub_quarantined, 1u);
}

// ---- Soak ----------------------------------------------------------------------

TEST(IntegritySoak, CorruptionAndTornWritesConvergeAfterScrub) {
  constexpr std::uint64_t kSoakBlocks = 64;
  constexpr int kWrites = 400;

  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.keep_trap_log = true;
  config.retry.max_attempts = 8;
  IntegrityRig rig(kSoakBlocks, config);

  // Baseline sync first, so every replica block is tracked by its checksum
  // layer *before* faults start firing (corruption that lands on a
  // never-tracked block is adopted as truth — undetectable by design).
  Rng rng(7);
  for (Lba lba = 0; lba < kSoakBlocks; ++lba) {
    ASSERT_TRUE(rig.engine->write(lba, random_block(8000 + lba)).is_ok());
  }
  ASSERT_TRUE(rig.engine->drain().is_ok());
  ASSERT_TRUE(rig.mems_match());

  // Storm phase: the replica's disk lies (torn writes) and rots (persistent
  // read corruption) while the primary keeps writing.
  FaultyDisk::Config faults;
  faults.torn_write_p = 0.05;
  faults.corrupt_p = 0.03;
  faults.corrupt_persistent = true;
  faults.seed = 99;
  rig.replica_faulty->reconfigure(faults);
  for (int i = 0; i < kWrites; ++i) {
    const Lba lba = rng.next_below(kSoakBlocks);
    ASSERT_TRUE(rig.engine->write(lba, random_block(9000 + i)).is_ok());
  }
  // Calm the disk before converging (a scrub against a still-lying disk
  // can never finish).
  rig.replica_faulty->reconfigure(FaultyDisk::Config{});
  ASSERT_TRUE(rig.engine->drain().is_ok());

  // Whether the storm itself triggers a NAK repair depends on a torn or
  // rotted block catching a *second* write before the faults stop, so force
  // one deterministic instance: rot a replica block at rest, then write to
  // that LBA — the replica's A_old read fails its checksum and the delta
  // must come back as a full-block repair.
  ASSERT_TRUE(rig.replica_faulty->corrupt_block(5, 3).is_ok());
  ASSERT_TRUE(rig.engine->write(5, random_block(9999)).is_ok());
  ASSERT_TRUE(rig.engine->drain().is_ok());
  const auto rm = rig.replica->metrics();
  EXPECT_GT(rm.full_repairs_requested, 0u);
  EXPECT_GT(rig.engine->metrics().nak_full_repairs, 0u);

  // Repair the replica-side residue (tears that were ACK'd and never
  // re-read, rot on blocks the storm skipped), then require byte-identical
  // volumes.
  auto repaired = rig.engine->verify_and_repair(0, kSoakBlocks);
  ASSERT_TRUE(repaired.is_ok()) << repaired.status().to_string();
  EXPECT_TRUE(rig.replica->damaged_blocks().empty());
  ASSERT_TRUE(rig.mems_match());

  // Now rot the primary and let the scrubber pull every block back from the
  // replica: 100% detection, 100% repair, nothing quarantined.
  const std::vector<Lba> rotted = {1, 7, 20, 33, 48, 63};
  for (Lba lba : rotted) {
    ASSERT_TRUE(rig.primary_faulty->corrupt_block(lba, lba % kBs).is_ok());
  }
  auto pass = rig.engine->scrub();
  ASSERT_TRUE(pass.is_ok()) << pass.status().to_string();
  EXPECT_EQ(pass->blocks_scanned, kSoakBlocks);
  EXPECT_EQ(pass->corruptions_found, rotted.size());
  EXPECT_EQ(pass->repaired, rotted.size());
  EXPECT_EQ(pass->repaired_by.at("replica"), rotted.size());
  EXPECT_EQ(pass->quarantined, 0u);
  ASSERT_TRUE(rig.mems_match());

  // And a final pass over the healed pair finds nothing.
  auto clean = rig.engine->scrub();
  ASSERT_TRUE(clean.is_ok());
  EXPECT_EQ(clean->corruptions_found, 0u);
}

}  // namespace
}  // namespace prins
