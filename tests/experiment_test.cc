// Integration tests for the experiment harness: the end-to-end pipeline
// behind Figures 4-7, at a miniature scale.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "workload/fsmicro.h"
#include "workload/tpcc.h"

namespace prins {
namespace {

WorkloadFactory tiny_tpcc() {
  return [] {
    TpccConfig config;
    config.warehouses = 1;
    config.customers_per_district = 30;
    config.items = 100;
    config.order_capacity = 2000;
    config.flush_interval = 4;
    config.seed = 7;
    return std::make_unique<Tpcc>(config);
  };
}

TEST(ExperimentTest, SinglePolicyRunIsConsistentAndMeasured) {
  PolicyRunConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.block_size = 4096;
  config.transactions = 50;
  auto result = run_policy(tiny_tpcc(), config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result->replicas_consistent);
  EXPECT_GT(result->page_writes, 0u);
  EXPECT_GT(result->sent.messages, 0u);
  EXPECT_GT(result->sent.payload_bytes, 0u);
  EXPECT_EQ(result->sent.messages, result->engine.writes);
  EXPECT_GT(result->mean_payload_bytes, 0.0);
}

TEST(ExperimentTest, PolicyOrderingHoldsAtOneBlockSize) {
  // PRINS < traditional+compression < traditional, and all replicas end
  // byte-identical to the primary.
  std::map<ReplicationPolicy, std::uint64_t> bytes;
  for (ReplicationPolicy policy : {ReplicationPolicy::kTraditional,
                                   ReplicationPolicy::kTraditionalCompressed,
                                   ReplicationPolicy::kPrins}) {
    PolicyRunConfig config;
    config.policy = policy;
    config.block_size = 8192;
    config.transactions = 100;
    auto result = run_policy(tiny_tpcc(), config);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_TRUE(result->replicas_consistent)
        << policy_name(policy) << " replica diverged";
    bytes[policy] = result->sent.payload_bytes;
  }
  EXPECT_LT(bytes[ReplicationPolicy::kTraditionalCompressed],
            bytes[ReplicationPolicy::kTraditional]);
  EXPECT_LT(bytes[ReplicationPolicy::kPrins],
            bytes[ReplicationPolicy::kTraditionalCompressed]);
  // PRINS wins by a wide margin even at this tiny scale.
  EXPECT_GT(bytes[ReplicationPolicy::kTraditional],
            3 * bytes[ReplicationPolicy::kPrins]);
}

TEST(ExperimentTest, IdenticalWriteCountsAcrossPolicies) {
  // The determinism contract: every policy must see the same write stream.
  std::uint64_t writes[2];
  int i = 0;
  for (ReplicationPolicy policy :
       {ReplicationPolicy::kTraditional, ReplicationPolicy::kPrins}) {
    PolicyRunConfig config;
    config.policy = policy;
    config.block_size = 4096;
    config.transactions = 80;
    auto result = run_policy(tiny_tpcc(), config);
    ASSERT_TRUE(result.is_ok());
    writes[i++] = result->engine.writes;
  }
  EXPECT_EQ(writes[0], writes[1]);
}

TEST(ExperimentTest, PrinsTrafficRoughlyBlockSizeIndependent) {
  // The paper's observation: PRINS transmits the changed bits, so doubling
  // the block size barely moves its traffic, while traditional doubles.
  std::uint64_t prins_small = 0, prins_large = 0;
  std::uint64_t trad_small = 0, trad_large = 0;
  for (std::uint32_t bs : {4096u, 16384u}) {
    for (ReplicationPolicy policy :
         {ReplicationPolicy::kTraditional, ReplicationPolicy::kPrins}) {
      PolicyRunConfig config;
      config.policy = policy;
      config.block_size = bs;
      config.transactions = 80;
      auto result = run_policy(tiny_tpcc(), config);
      ASSERT_TRUE(result.is_ok());
      auto& slot = policy == ReplicationPolicy::kPrins
                       ? (bs == 4096 ? prins_small : prins_large)
                       : (bs == 4096 ? trad_small : trad_large);
      slot = result->sent.payload_bytes;
    }
  }
  // Traditional scales with block size (4x the bytes per block write; the
  // net factor is ~2 because an 8 KB page spans two 4 KB blocks)...
  EXPECT_GT(static_cast<double>(trad_large) / trad_small, 1.7);
  // ...PRINS barely moves.
  EXPECT_LT(static_cast<double>(prins_large) / prins_small, 1.8);
}

TEST(ExperimentTest, MultiReplicaCountsAllLinks) {
  PolicyRunConfig one;
  one.policy = ReplicationPolicy::kPrins;
  one.block_size = 4096;
  one.transactions = 30;
  one.replicas = 1;
  auto single = run_policy(tiny_tpcc(), one);
  ASSERT_TRUE(single.is_ok());

  PolicyRunConfig three = one;
  three.replicas = 3;
  auto triple = run_policy(tiny_tpcc(), three);
  ASSERT_TRUE(triple.is_ok());
  EXPECT_TRUE(triple->replicas_consistent);
  EXPECT_EQ(triple->sent.messages, 3 * single->sent.messages);
  EXPECT_EQ(triple->sent.payload_bytes, 3 * single->sent.payload_bytes);
}

TEST(ExperimentTest, SweepProducesAllCells) {
  SweepConfig config;
  config.block_sizes = {4096, 8192};
  config.transactions = 30;
  auto results = run_sweep(tiny_tpcc(), config);
  ASSERT_TRUE(results.is_ok()) << results.status().to_string();
  EXPECT_EQ(results->size(), 2u * 3u);
  for (const auto& r : *results) {
    EXPECT_TRUE(r.replicas_consistent);
  }
  const std::string table = format_sweep_table("test sweep", *results);
  EXPECT_NE(table.find("PRINS"), std::string::npos);
  EXPECT_NE(table.find("traditional"), std::string::npos);
  EXPECT_NE(table.find("4096"), std::string::npos);
}

TEST(ExperimentTest, FsMicroRunsThroughHarness) {
  WorkloadFactory factory = [] {
    FsMicroConfig config;
    config.directories = 4;
    config.files_per_directory = 3;
    config.tar_directories = 2;
    config.max_file_bytes = 8 * 1024;
    config.seed = 5;
    return std::make_unique<FsMicro>(config);
  };
  PolicyRunConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.block_size = 4096;
  config.transactions = 3;  // three tar rounds
  auto result = run_policy(factory, config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(result->replicas_consistent);
  EXPECT_GT(result->sent.messages, 0u);
}

}  // namespace
}  // namespace prins
