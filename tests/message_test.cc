// Tests for the replication message wire format and verify-protocol
// packing helpers.
#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/endian.h"
#include "common/rng.h"
#include "prins/message.h"
#include "prins/verify.h"

namespace prins {
namespace {

ReplicationMessage sample_message() {
  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = ReplicationPolicy::kPrins;
  msg.cluster_epoch = 7;
  msg.block_size = 8192;
  msg.lba = 0x123456789ull;
  msg.sequence = 42;
  msg.timestamp_us = 1000001;
  msg.payload = {9, 8, 7, 6, 5};
  return msg;
}

TEST(ReplicationMessageTest, RoundTrip) {
  const ReplicationMessage msg = sample_message();
  auto back = ReplicationMessage::decode(msg.encode());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back->kind, msg.kind);
  EXPECT_EQ(back->policy, msg.policy);
  EXPECT_EQ(back->cluster_epoch, msg.cluster_epoch);
  EXPECT_EQ(back->block_size, msg.block_size);
  EXPECT_EQ(back->lba, msg.lba);
  EXPECT_EQ(back->sequence, msg.sequence);
  EXPECT_EQ(back->timestamp_us, msg.timestamp_us);
  EXPECT_EQ(back->payload, msg.payload);
}

TEST(ReplicationMessageTest, AllKindsAndPoliciesRoundTrip) {
  for (auto kind : {MessageKind::kWrite, MessageKind::kSyncBlock,
                    MessageKind::kAck, MessageKind::kVerifyRequest,
                    MessageKind::kVerifyReply, MessageKind::kRepairBlock,
                    MessageKind::kBarrier}) {
    for (auto policy : {ReplicationPolicy::kTraditional,
                        ReplicationPolicy::kTraditionalCompressed,
                        ReplicationPolicy::kPrins,
                        ReplicationPolicy::kPrinsRle}) {
      ReplicationMessage msg = sample_message();
      msg.kind = kind;
      msg.policy = policy;
      auto back = ReplicationMessage::decode(msg.encode());
      ASSERT_TRUE(back.is_ok());
      EXPECT_EQ(back->kind, kind);
      EXPECT_EQ(back->policy, policy);
    }
  }
}

TEST(ReplicationMessageTest, EmptyPayloadAllowed) {
  ReplicationMessage msg = sample_message();
  msg.payload.clear();
  auto back = ReplicationMessage::decode(msg.encode());
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back->payload.empty());
}

TEST(ReplicationMessageTest, CrcCatchesEveryByteFlip) {
  const Bytes wire = sample_message().encode();
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes bad = wire;
    bad[rng.next_below(bad.size())] ^= static_cast<Byte>(rng.next_in(1, 255));
    EXPECT_FALSE(ReplicationMessage::decode(bad).is_ok());
  }
}

TEST(ReplicationMessageTest, RejectsTruncation) {
  const Bytes wire = sample_message().encode();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(
        ReplicationMessage::decode(ByteSpan(wire).first(cut)).is_ok());
  }
}

TEST(ReplicationMessageTest, RejectsBadKindAndPolicy) {
  // Kind byte is at offset 4; policy at 5.  Re-encode CRC to isolate the
  // field validation from the checksum.
  ReplicationMessage msg = sample_message();
  Bytes wire = msg.encode();
  wire[4] = 99;
  // Fix up the CRC so only the kind is wrong.
  const std::uint32_t crc = crc32c(ByteSpan(wire).first(wire.size() - 4));
  store_le32(MutByteSpan(wire).subspan(wire.size() - 4), crc);
  auto bad_kind = ReplicationMessage::decode(wire);
  ASSERT_FALSE(bad_kind.is_ok());
  EXPECT_NE(bad_kind.status().message().find("kind"), std::string::npos);
}

// ---- verify packing -------------------------------------------------------------

TEST(VerifyPackingTest, ChecksumsRoundTrip) {
  std::vector<BlockChecksum> sums;
  for (std::uint64_t i = 0; i < 100; ++i) {
    sums.push_back(BlockChecksum{i * 7, static_cast<std::uint32_t>(i * 31)});
  }
  auto back = unpack_checksums(pack_checksums(sums));
  ASSERT_TRUE(back.is_ok());
  ASSERT_EQ(back->size(), sums.size());
  for (std::size_t i = 0; i < sums.size(); ++i) {
    EXPECT_EQ((*back)[i].lba, sums[i].lba);
    EXPECT_EQ((*back)[i].crc, sums[i].crc);
  }
}

TEST(VerifyPackingTest, LbasRoundTrip) {
  const std::vector<std::uint64_t> lbas{0, 1, 0xFFFFFFFFFFFFull};
  auto back = unpack_lbas(pack_lbas(lbas));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, lbas);
}

TEST(VerifyPackingTest, EmptyListsRoundTrip) {
  auto sums = unpack_checksums(pack_checksums({}));
  ASSERT_TRUE(sums.is_ok());
  EXPECT_TRUE(sums->empty());
  auto lbas = unpack_lbas(pack_lbas({}));
  ASSERT_TRUE(lbas.is_ok());
  EXPECT_TRUE(lbas->empty());
}

TEST(VerifyPackingTest, LengthMismatchRejected) {
  Bytes packed = pack_checksums({BlockChecksum{1, 2}});
  packed.pop_back();
  EXPECT_FALSE(unpack_checksums(packed).is_ok());
  Bytes lbas = pack_lbas({1, 2});
  lbas.push_back(0);
  EXPECT_FALSE(unpack_lbas(lbas).is_ok());
  EXPECT_FALSE(unpack_lbas({}).is_ok());
}

// ---- kAckBatch range packing ----------------------------------------------

TEST(AckRangeTest, PackUnpackRoundTrip) {
  const std::vector<AckRange> ranges{{1, 3}, {10, 1}, {0xFFFFFFFF00ull, 7}};
  const Bytes packed = pack_ack_ranges(ranges);
  EXPECT_EQ(packed.size(), 4 + ranges.size() * 12);
  auto back = unpack_ack_ranges(packed);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  ASSERT_EQ(back->size(), ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ((*back)[i].first_sequence, ranges[i].first_sequence);
    EXPECT_EQ((*back)[i].count, ranges[i].count);
  }
}

TEST(AckRangeTest, MalformedPayloadsRejected) {
  EXPECT_FALSE(unpack_ack_ranges({}).is_ok());
  Bytes truncated = pack_ack_ranges({{5, 2}});
  truncated.pop_back();
  EXPECT_FALSE(unpack_ack_ranges(truncated).is_ok());
  // A zero-length run never describes an applied write.
  EXPECT_FALSE(unpack_ack_ranges(pack_ack_ranges({{5, 0}})).is_ok());
}

TEST(AckRangeTest, CoalesceMergesRunsAndDuplicates) {
  std::vector<std::uint64_t> acked{7, 5, 6, 6, 9, 12, 13, 5};
  const std::vector<AckRange> ranges = coalesce_ack_ranges(acked);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].first_sequence, 5u);
  EXPECT_EQ(ranges[0].count, 3u);  // 5,6,7 with duplicates folded in
  EXPECT_EQ(ranges[1].first_sequence, 9u);
  EXPECT_EQ(ranges[1].count, 1u);
  EXPECT_EQ(ranges[2].first_sequence, 12u);
  EXPECT_EQ(ranges[2].count, 2u);
  std::vector<std::uint64_t> empty;
  EXPECT_TRUE(coalesce_ack_ranges(empty).empty());
}

TEST(AckRangeTest, CoversIsHalfOpenOnTheRun) {
  const AckRange range{100, 4};
  EXPECT_FALSE(range.covers(99));
  EXPECT_TRUE(range.covers(100));
  EXPECT_TRUE(range.covers(103));
  EXPECT_FALSE(range.covers(104));
  // No underflow when the probe is far below the run start.
  EXPECT_FALSE(range.covers(0));
}

}  // namespace
}  // namespace prins
