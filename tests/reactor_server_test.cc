// Tests for the thread-free node: ReactorReplicaServer (many initiators,
// one shared apply pipeline), ReactorIscsiServer (actor-per-session PDU
// serving), the reactor-driven engine senders (EngineConfig::
// reactor_senders), the concurrent replica_serve_in_background accept
// loop, and the validated PRINS_* env knob parser.  Everything here runs
// under the `reactor` ctest label, so the CI sanitizer matrix (ASan/TSan)
// sweeps it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "block/mem_disk.h"
#include "codec/codec.h"
#include "common/env.h"
#include "common/rng.h"
#include "iscsi/initiator.h"
#include "iscsi/reactor_target.h"
#include "iscsi/target.h"
#include "net/faulty.h"
#include "net/reactor.h"
#include "net/reactor_tcp.h"
#include "net/tcp.h"
#include "prins/engine.h"
#include "prins/intent_log.h"
#include "prins/reactor_server.h"
#include "prins/replica.h"

namespace prins {
namespace {

using namespace std::chrono_literals;

bool await(const std::function<bool()>& done,
           std::chrono::milliseconds limit = 10s) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// Drain replies until `expect` completions are covered, counting a kAck as
// one completion and a kAckBatch as the sum of its range lengths.
Status collect_acks(Transport& transport, std::size_t expect) {
  std::size_t covered = 0;
  while (covered < expect) {
    auto wire = transport.recv_for(10s);
    if (!wire.is_ok()) return wire.status();
    auto reply = ReplicationMessage::decode(*wire);
    if (!reply.is_ok()) return reply.status();
    if (reply->kind == MessageKind::kAckBatch) {
      auto ranges = unpack_ack_ranges(reply->payload);
      if (!ranges.is_ok()) return ranges.status();
      for (const AckRange& range : *ranges) covered += range.count;
    } else if (reply->kind == MessageKind::kAck) {
      ++covered;
    } else {
      return failed_precondition("unexpected reply kind");
    }
  }
  return Status::ok();
}

ReplicationMessage sync_block_message(Lba lba, std::uint64_t sequence,
                                      std::uint32_t bs, ByteSpan block) {
  ReplicationMessage msg;
  msg.kind = MessageKind::kSyncBlock;
  msg.policy = ReplicationPolicy::kPrinsRle;
  msg.block_size = bs;
  msg.lba = lba;
  msg.sequence = sequence;
  msg.timestamp_us = sequence;
  msg.payload = encode_frame(codec_for(CodecId::kLz), block);
  return msg;
}

// ---- ReactorReplicaServer --------------------------------------------------

TEST(ReactorReplicaServerTest, TwoInitiatorsDisjointRangesConverge) {
  // Two initiators stream parity deltas into ONE reactor-hosted replica
  // process: disjoint LBA halves, interleaved in time, one shared set of
  // LBA-striped apply workers.  Each initiator tracks the XOR-telescoped
  // contents it expects; sequence ranges are distinct per connection
  // because the replica's dedup window is global across sessions.
  constexpr std::uint32_t kBs = 1024;
  constexpr std::uint64_t kBlocks = 128;
  ReplicaConfig rconfig;
  rconfig.apply_shards = 4;
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk, rconfig);
  auto pool = ReactorPool::create(2);
  ASSERT_TRUE(pool.is_ok()) << pool.status().to_string();
  auto server = ReactorReplicaServer::start(replica, *pool);
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();

  std::vector<Bytes> expect(kBlocks, Bytes(kBs, Byte{0}));
  auto run_initiator = [&](Lba base, std::uint64_t sequence,
                           std::uint64_t seed) {
    auto link = TcpTransport::connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(link.is_ok()) << link.status().to_string();
    Rng rng(seed);
    Bytes delta(kBs);
    std::size_t sent = 0;
    for (int i = 0; i < 300; ++i) {
      const Lba lba = base + rng.next_below(kBlocks / 2);
      rng.fill(delta);
      // A parity delta XORs onto whatever the block holds (telescoping).
      for (std::size_t b = 0; b < kBs; ++b) expect[lba][b] ^= delta[b];
      ReplicationMessage msg;
      msg.kind = MessageKind::kWrite;
      msg.policy = ReplicationPolicy::kPrinsRle;
      msg.block_size = kBs;
      msg.lba = lba;
      msg.sequence = sequence + sent;
      msg.timestamp_us = sequence + sent;
      msg.payload = encode_frame(codec_for(CodecId::kZeroRle), delta);
      ASSERT_TRUE((*link)->send(msg.encode()).is_ok());
      ++sent;
    }
    ASSERT_TRUE(collect_acks(**link, sent).is_ok());
    (*link)->close();
  };

  std::thread a([&] { run_initiator(0, 10000, 11); });
  std::thread b([&] { run_initiator(kBlocks / 2, 20000, 22); });
  a.join();
  b.join();

  Bytes got(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(replica_disk->read(lba, got).is_ok());
    ASSERT_EQ(expect[lba], got) << "diverged at lba " << lba;
  }
  EXPECT_EQ(replica->metrics().parity_applies, 600u);
  (*server)->stop();
}

TEST(ReactorReplicaServerTest, OverlappingInitiatorsApplyWholeBlocks) {
  // Two raw initiators hammer the SAME LBA range with full-block syncs.
  // The striped apply pipeline may interleave them per block, but every
  // final block must be exactly one initiator's pattern — never a torn
  // mix — and every sequence must be acked.
  constexpr std::uint32_t kBs = 512;
  constexpr std::uint64_t kBlocks = 32;
  ReplicaConfig rconfig;
  rconfig.apply_shards = 4;
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk, rconfig);
  auto pool = ReactorPool::create(2);
  ASSERT_TRUE(pool.is_ok());
  auto server = ReactorReplicaServer::start(replica, *pool);
  ASSERT_TRUE(server.is_ok());

  // Sequence ranges must be distinct per connection: the replica's dedup
  // window is global across sessions, not per connection.
  auto run_initiator = [&](Byte fill, std::uint64_t first_sequence) {
    auto link = TcpTransport::connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(link.is_ok());
    const Bytes block(kBs, fill);
    std::size_t sent = 0;
    for (int round = 0; round < 4; ++round) {
      for (Lba lba = 0; lba < kBlocks; ++lba) {
        const auto msg =
            sync_block_message(lba, first_sequence + sent, kBs, block);
        ASSERT_TRUE((*link)->send(msg.encode()).is_ok());
        ++sent;
      }
    }
    ASSERT_TRUE(collect_acks(**link, sent).is_ok());
    (*link)->close();
  };

  std::thread a([&] { run_initiator(Byte{0xAA}, 1000); });
  std::thread b([&] { run_initiator(Byte{0xBB}, 2000); });
  a.join();
  b.join();

  Bytes got(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(replica_disk->read(lba, got).is_ok());
    const bool all_a = got == Bytes(kBs, Byte{0xAA});
    const bool all_b = got == Bytes(kBs, Byte{0xBB});
    ASSERT_TRUE(all_a || all_b) << "torn block at lba " << lba;
  }
  EXPECT_EQ(replica->metrics().sync_blocks, 2u * 4u * kBlocks);
  (*server)->stop();
}

TEST(ReactorReplicaServerTest, DuplicateAcrossReconnectAppliesOnce) {
  // A primary that lost the ack replays its un-acked writes on a fresh
  // connection.  Parity deltas XOR: applying one twice would undo the
  // write, so the dedup window must span connections.
  constexpr std::uint32_t kBs = 512;
  auto replica_disk = std::make_shared<MemDisk>(8, kBs);
  ReplicaConfig rconfig;
  rconfig.apply_shards = 2;
  auto replica = std::make_shared<ReplicaEngine>(replica_disk, rconfig);
  auto pool = ReactorPool::create(1);
  ASSERT_TRUE(pool.is_ok());
  auto server = ReactorReplicaServer::start(replica, *pool);
  ASSERT_TRUE(server.is_ok());

  Bytes delta(kBs);
  Rng(77).fill(delta);
  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = ReplicationPolicy::kPrinsRle;
  msg.block_size = kBs;
  msg.lba = 3;
  msg.sequence = 42;
  msg.timestamp_us = 1;
  msg.payload = encode_frame(codec_for(CodecId::kZeroRle), delta);
  const Bytes wire = msg.encode();

  for (int attempt = 0; attempt < 2; ++attempt) {
    auto link = TcpTransport::connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(link.is_ok());
    ASSERT_TRUE((*link)->send(wire).is_ok());
    ASSERT_TRUE(collect_acks(**link, 1).is_ok());  // duplicate is acked too
    (*link)->close();
  }

  // Device holds delta ⊕ zeros exactly once: a double apply would be zeros.
  Bytes got(kBs);
  ASSERT_TRUE(replica_disk->read(3, got).is_ok());
  EXPECT_EQ(got, delta);
  EXPECT_EQ(replica->metrics().duplicates_dropped, 1u);
  (*server)->stop();
}

TEST(ReactorReplicaServerTest, FaultStormThroughWrappedTransportHeals) {
  // ReactorReplicaServerOptions::wrap_transport composes the fault
  // injector with the reactor path: the FIRST accepted connection's reply
  // stream is corrupted and then hard-cut mid-stream, later connections
  // (the primary's reconnects) are clean.  The primary's heal machinery —
  // reconnect factory plus trap-log fold — must converge the replica
  // anyway, proving faults on a decorated reactor transport behave like
  // faults on a blocking one.
  constexpr std::uint32_t kBs = 1024;
  constexpr std::uint64_t kBlocks = 64;
  ReplicaConfig rconfig;
  rconfig.apply_shards = 4;
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk, rconfig);
  auto pool = ReactorPool::create(2);
  ASSERT_TRUE(pool.is_ok());

  std::atomic<std::size_t> accepted{0};
  ReactorReplicaServerOptions options;
  options.wrap_transport =
      [&](std::unique_ptr<Transport> conn) -> std::unique_ptr<Transport> {
    if (accepted.fetch_add(1) != 0) return conn;  // reconnects are clean
    FaultConfig storm;
    storm.corrupt_p = 0.02;      // garbled acks: the primary must re-link
    storm.disconnect_after = 90;  // then the reply path hard-cuts
    storm.seed = 99;
    return std::make_unique<FaultyTransport>(std::move(conn), storm);
  };
  auto server = ReactorReplicaServer::start(replica, *pool, options);
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();
  const std::uint16_t port = (*server)->port();

  EngineConfig config;
  config.keep_trap_log = true;
  config.retry.base_backoff = 1ms;
  config.retry.max_backoff = 10ms;
  config.retry.op_timeout = 2s;
  config.reconnect = [&](std::size_t) -> Result<std::unique_ptr<Transport>> {
    auto fresh = TcpTransport::connect("127.0.0.1", port);
    if (!fresh.is_ok()) return fresh.status();
    return std::unique_ptr<Transport>(std::move(*fresh));
  };
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  {
    auto link = TcpTransport::connect("127.0.0.1", port);
    ASSERT_TRUE(link.is_ok());
    engine->add_replica(std::move(*link));
  }

  Rng rng(53);
  Bytes block(kBs);
  for (int i = 0; i < 400; ++i) {
    rng.fill(block);
    ASSERT_TRUE(engine->write(rng.next_below(kBlocks), block).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_GE(engine->metrics().reconnects, 1u);
  EXPECT_GE(accepted.load(), 2u);

  Bytes want(kBs), got(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(primary->read(lba, want).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, got).is_ok());
    ASSERT_EQ(want, got) << "diverged at lba " << lba;
  }
  engine.reset();
  (*server)->stop();
}

TEST(ReactorReplicaServerTest, RestartUnderLoadAppliesExactlyOnce) {
  // Kill the reactor-hosted replica mid-stream with writes in flight, then
  // restart it over the same volume and intent log.  recover_intents()
  // must rebuild the dedup windows for every apply that completed before
  // the kill, so when the primary-side initiator replays its whole
  // un-acked window (it cannot know which applies landed) each XOR delta
  // lands exactly once — a double apply would undo it.
  constexpr std::uint32_t kBs = 512;
  constexpr std::uint64_t kBlocks = 32;
  const std::string intent_path =
      ::testing::TempDir() + "/reactor_restart_intents.log";
  std::remove(intent_path.c_str());
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto pool = ReactorPool::create(2);
  ASSERT_TRUE(pool.is_ok());

  std::vector<Bytes> expect(kBlocks, Bytes(kBs, Byte{0}));
  Rng rng(67);
  std::uint64_t sequence = 0;
  // Encode the next delta, folding it into the test-side expected state
  // exactly once no matter how often the wire copy is (re)sent.
  auto next_write = [&](Lba* out_lba) {
    const Lba lba = rng.next_below(kBlocks);
    Bytes delta(kBs);
    rng.fill(delta);
    for (std::size_t b = 0; b < kBs; ++b) expect[lba][b] ^= delta[b];
    ReplicationMessage msg;
    msg.kind = MessageKind::kWrite;
    msg.policy = ReplicationPolicy::kPrinsRle;
    msg.block_size = kBs;
    msg.lba = lba;
    msg.sequence = ++sequence;
    msg.timestamp_us = sequence;
    msg.payload = encode_frame(codec_for(CodecId::kZeroRle), delta);
    if (out_lba != nullptr) *out_lba = lba;
    return msg.encode();
  };

  std::vector<Bytes> unacked;  // the window the initiator will replay
  std::uint64_t applied_before_kill = 0;
  {
    auto intents = WriteIntentLog::open(intent_path);
    ASSERT_TRUE(intents.is_ok());
    ReplicaConfig rconfig;
    rconfig.apply_shards = 4;
    rconfig.intent_log = std::move(*intents);
    rconfig.intent_checkpoint_every = 0;  // keep every intent for recovery
    auto replica = std::make_shared<ReplicaEngine>(replica_disk, rconfig);
    auto server = ReactorReplicaServer::start(replica, *pool);
    ASSERT_TRUE(server.is_ok());
    auto link = TcpTransport::connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(link.is_ok());
    // A fully acked prefix...
    for (int i = 0; i < 120; ++i) {
      ASSERT_TRUE((*link)->send(next_write(nullptr)).is_ok());
    }
    ASSERT_TRUE(collect_acks(**link, 120).is_ok());
    // ...then a burst the kill races: sent, maybe applied, never acked.
    for (int i = 0; i < 40; ++i) {
      Bytes wire = next_write(nullptr);
      if (!(*link)->send(wire).is_ok()) break;  // server may die under us
      unacked.push_back(std::move(wire));
    }
    (*server)->stop();  // hard stop: close sessions, drain apply workers
    (*link)->close();
    applied_before_kill = replica->metrics().parity_applies;
  }  // replica engine + intent log fd die here; disk and file survive

  // Restart: same volume, same intent log.
  auto intents = WriteIntentLog::open(intent_path);
  ASSERT_TRUE(intents.is_ok());
  ReplicaConfig rconfig;
  rconfig.apply_shards = 4;
  rconfig.intent_log = std::move(*intents);
  rconfig.intent_checkpoint_every = 0;
  auto replica = std::make_shared<ReplicaEngine>(replica_disk, rconfig);
  auto damaged = replica->recover_intents();
  ASSERT_TRUE(damaged.is_ok()) << damaged.status().to_string();
  EXPECT_TRUE(damaged->empty());  // stop() drains workers: no torn applies
  auto server = ReactorReplicaServer::start(replica, *pool);
  ASSERT_TRUE(server.is_ok());

  auto link = TcpTransport::connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(link.is_ok());
  for (const Bytes& wire : unacked) {  // replay the whole un-acked window
    ASSERT_TRUE((*link)->send(wire).is_ok());
  }
  for (int i = 0; i < 20; ++i) {  // and keep fresh load flowing
    ASSERT_TRUE((*link)->send(next_write(nullptr)).is_ok());
  }
  ASSERT_TRUE(collect_acks(**link, unacked.size() + 20).is_ok());
  (*link)->close();

  Bytes got(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(replica_disk->read(lba, got).is_ok());
    ASSERT_EQ(expect[lba], got) << "double or missing apply at lba " << lba;
  }
  // Exactly-once across the restart: every sequence applied once, and the
  // replayed writes that had already landed were dropped by the rebuilt
  // dedup window, not re-XORed.
  const ReplicaMetrics after = replica->metrics();
  EXPECT_EQ(applied_before_kill + after.parity_applies, sequence);
  EXPECT_EQ(after.parity_applies + after.duplicates_dropped,
            unacked.size() + 20);
  (*server)->stop();
  std::remove(intent_path.c_str());
}

// ---- replica_serve_in_background (threaded path bugfixes) ------------------

TEST(ReplicaServeTest, BackgroundLoopServesConcurrentSessions) {
  // The historical loop served sessions one at a time, so a second
  // initiator hung behind the first's open connection.  Hold session A
  // open mid-exchange while session B does a full round trip.
  constexpr std::uint32_t kBs = 512;
  auto replica_disk = std::make_shared<MemDisk>(16, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.is_ok());
  const std::uint16_t port = (*listener)->port();
  auto shared_listener = std::shared_ptr<Listener>(std::move(*listener));
  std::thread server = replica_serve_in_background(replica, shared_listener);

  // Session A: connected and idle (a slow primary holding its link).
  auto idle = TcpTransport::connect("127.0.0.1", port);
  ASSERT_TRUE(idle.is_ok());
  const Bytes block(kBs, Byte{0x5c});
  ASSERT_TRUE(
      (*idle)->send(sync_block_message(0, 1, kBs, block).encode()).is_ok());
  ASSERT_TRUE(collect_acks(**idle, 1).is_ok());

  // Session B must complete while A stays open.
  auto busy = TcpTransport::connect("127.0.0.1", port);
  ASSERT_TRUE(busy.is_ok());
  ASSERT_TRUE(
      (*busy)->send(sync_block_message(1, 2, kBs, block).encode()).is_ok());
  ASSERT_TRUE(collect_acks(**busy, 1).is_ok());
  (*busy)->close();

  // A is still alive afterwards.
  ASSERT_TRUE(
      (*idle)->send(sync_block_message(2, 3, kBs, block).encode()).is_ok());
  ASSERT_TRUE(collect_acks(**idle, 1).is_ok());
  (*idle)->close();

  shared_listener->close();
  server.join();
  EXPECT_EQ(replica->metrics().sync_blocks, 3u);
}

TEST(ReplicaServeTest, AcceptLoopRetriesTransientFailures) {
  // A listener that bounces a few accepts (ECONNABORTED-style) must not
  // kill the serve loop; only kUnavailable (closed) ends it.
  class FlakyListener final : public Listener {
   public:
    FlakyListener(std::unique_ptr<Listener> inner, int failures)
        : inner_(std::move(inner)), failures_(failures) {}
    Result<std::unique_ptr<Transport>> accept() override {
      if (failures_-- > 0) return io_error("injected accept failure");
      return inner_->accept();
    }
    void close() override { inner_->close(); }

   private:
    std::unique_ptr<Listener> inner_;
    std::atomic<int> failures_;
  };

  constexpr std::uint32_t kBs = 512;
  auto replica_disk = std::make_shared<MemDisk>(8, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto inner = TcpListener::listen(0);
  ASSERT_TRUE(inner.is_ok());
  const std::uint16_t port = (*inner)->port();
  auto listener = std::make_shared<FlakyListener>(std::move(*inner), 5);
  std::thread server = replica_serve_in_background(replica, listener);

  auto link = TcpTransport::connect("127.0.0.1", port);
  ASSERT_TRUE(link.is_ok());
  const Bytes block(kBs, Byte{0x3d});
  ASSERT_TRUE(
      (*link)->send(sync_block_message(4, 9, kBs, block).encode()).is_ok());
  ASSERT_TRUE(collect_acks(**link, 1).is_ok());
  (*link)->close();

  listener->close();
  server.join();
  EXPECT_EQ(replica->metrics().sync_blocks, 1u);
}

// ---- ReactorIscsiServer ----------------------------------------------------

TEST(ReactorIscsiServerTest, TwoInitiatorsShareTheWorkerPool) {
  constexpr std::uint32_t kBs = 512;
  constexpr std::uint64_t kBlocks = 64;
  auto disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto target = std::make_shared<iscsi::IscsiTarget>(disk);
  auto pool = ReactorPool::create(2);
  ASSERT_TRUE(pool.is_ok());
  iscsi::ReactorIscsiServerOptions options;
  options.worker_threads = 2;
  auto server = iscsi::ReactorIscsiServer::start(target, *pool, options);
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();

  auto run_initiator = [&](Lba base, std::uint64_t seed) {
    auto link = TcpTransport::connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(link.is_ok());
    auto initiator = iscsi::IscsiInitiator::login(std::move(*link));
    ASSERT_TRUE(initiator.is_ok()) << initiator.status().to_string();
    EXPECT_EQ((*initiator)->block_size(), kBs);
    Rng rng(seed);
    Bytes data(kBs), back(kBs);
    for (int i = 0; i < 40; ++i) {
      const Lba lba = base + rng.next_below(kBlocks / 2);
      rng.fill(data);
      ASSERT_TRUE((*initiator)->write(lba, data).is_ok());
      ASSERT_TRUE((*initiator)->read(lba, back).is_ok());
      ASSERT_EQ(data, back);
    }
    ASSERT_TRUE((*initiator)->ping().is_ok());
    ASSERT_TRUE((*initiator)->logout().is_ok());
  };

  std::thread a([&] { run_initiator(0, 5); });
  std::thread b([&] { run_initiator(kBlocks / 2, 6); });
  a.join();
  b.join();

  EXPECT_TRUE(await([&] { return (*server)->sessions() == 0; }, 5s));
  (*server)->stop();
}

// ---- reactor-driven engine senders -----------------------------------------

TEST(ReactorSenderTest, WritesConvergeWithoutSenderThreads) {
  // Primary and replica both thread-free: ReactorTcpTransport links driven
  // by outbox state machines into a ReactorReplicaServer.
  constexpr std::uint32_t kBs = 1024;
  constexpr std::uint64_t kBlocks = 64;
  ReplicaConfig rconfig;
  rconfig.apply_shards = 4;
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk, rconfig);
  auto pool = ReactorPool::create(2);
  ASSERT_TRUE(pool.is_ok());
  auto server = ReactorReplicaServer::start(replica, *pool);
  ASSERT_TRUE(server.is_ok());

  auto reactor = Reactor::create();
  ASSERT_TRUE(reactor.is_ok());
  EngineConfig config;
  config.reactor = *reactor;
  config.reactor_senders = true;
  config.retry.op_timeout = 2s;
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  {
    auto link = ReactorTcpTransport::connect(
        *reactor, "127.0.0.1", (*server)->port());
    ASSERT_TRUE(link.is_ok()) << link.status().to_string();
    engine->add_replica(std::move(*link));
  }

  Rng rng(41);
  Bytes block(kBs);
  for (int i = 0; i < 500; ++i) {
    rng.fill(block);
    ASSERT_TRUE(engine->write(rng.next_below(kBlocks), block).is_ok());
    if (i == 250) ASSERT_TRUE(engine->drain().is_ok());  // mid-stream drain
  }
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_GT(engine->metrics().acks, 0u);

  Bytes want(kBs), got(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(primary->read(lba, want).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, got).is_ok());
    ASSERT_EQ(want, got) << "diverged at lba " << lba;
  }
  engine.reset();  // must cancel its wheel timers and pumps cleanly
  EXPECT_TRUE(await([&] { return (*reactor)->pending_timers() == 0; }, 2s));
  (*server)->stop();
}

TEST(ReactorSenderTest, HealsAfterHardConnectionCut) {
  // The reactor senders never reconnect in-round: a cut degrades the link
  // and the self-heal path (trap-log fold over a fresh transport from the
  // reconnect factory) catches the replica up.
  constexpr std::uint32_t kBs = 1024;
  constexpr std::uint64_t kBlocks = 64;
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto inner = TcpListener::listen(0);
  ASSERT_TRUE(inner.is_ok());
  const std::uint16_t port = (*inner)->port();
  // The server end of the FIRST link hard-cuts after 60 sends; later
  // accepted links (the heal's reconnects) inherit higher seeds but the
  // same schedule, so keep the cut one-shot per link and the write count
  // past it.
  FaultConfig cut;
  cut.disconnect_after = 60;
  auto listener = std::shared_ptr<Listener>(
      std::make_unique<FaultyListener>(std::move(*inner), cut));
  std::thread server = replica_serve_in_background(replica, listener);

  auto reactor = Reactor::create();
  ASSERT_TRUE(reactor.is_ok());
  EngineConfig config;
  config.keep_trap_log = true;
  config.retry.base_backoff = 1ms;
  config.retry.max_backoff = 10ms;
  config.retry.op_timeout = 2s;
  config.reactor = *reactor;
  config.reactor_senders = true;
  config.reconnect = [&](std::size_t) -> Result<std::unique_ptr<Transport>> {
    auto fresh = ReactorTcpTransport::connect(
        *reactor, "127.0.0.1", port);
    if (!fresh.is_ok()) return fresh.status();
    return std::unique_ptr<Transport>(std::move(*fresh));
  };
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  {
    auto link = ReactorTcpTransport::connect(
        *reactor, "127.0.0.1", port);
    ASSERT_TRUE(link.is_ok());
    engine->add_replica(std::move(*link));
  }

  Rng rng(43);
  Bytes block(kBs);
  for (int i = 0; i < 400; ++i) {
    rng.fill(block);
    ASSERT_TRUE(engine->write(rng.next_below(kBlocks), block).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());
  EXPECT_GE(engine->metrics().reconnects, 1u);
  EXPECT_GE(engine->metrics().auto_resyncs, 1u);

  Bytes want(kBs), got(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(primary->read(lba, want).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, got).is_ok());
    ASSERT_EQ(want, got) << "diverged at lba " << lba;
  }
  engine.reset();
  listener->close();
  server.join();
}

TEST(ReactorSenderTest, VerifyAndRepairParksTheSenderExclusively) {
  // Operator paths (verify/repair) do blocking send/recv exchanges on the
  // link: with reactor senders they must park the state machine, own the
  // transport, and hand it back — after which normal replication resumes.
  constexpr std::uint32_t kBs = 1024;
  constexpr std::uint64_t kBlocks = 32;
  ReplicaConfig rconfig;
  rconfig.apply_shards = 2;
  auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk, rconfig);
  auto pool = ReactorPool::create(1);
  ASSERT_TRUE(pool.is_ok());
  auto server = ReactorReplicaServer::start(replica, *pool);
  ASSERT_TRUE(server.is_ok());

  auto reactor = Reactor::create();
  ASSERT_TRUE(reactor.is_ok());
  EngineConfig config;
  config.reactor = *reactor;
  config.reactor_senders = true;
  config.retry.op_timeout = 2s;
  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  {
    auto link = ReactorTcpTransport::connect(
        *reactor, "127.0.0.1", (*server)->port());
    ASSERT_TRUE(link.is_ok());
    engine->add_replica(std::move(*link));
  }

  Rng rng(47);
  Bytes block(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    rng.fill(block);
    ASSERT_TRUE(engine->write(lba, block).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());

  // Silently corrupt two replica blocks behind the engine's back.
  const Bytes junk(kBs, Byte{0xEE});
  ASSERT_TRUE(replica_disk->write(5, junk).is_ok());
  ASSERT_TRUE(replica_disk->write(17, junk).is_ok());
  auto repaired = engine->verify_and_repair(0, kBlocks);
  ASSERT_TRUE(repaired.is_ok()) << repaired.status().to_string();
  EXPECT_EQ(*repaired, 2u);

  // The sender machine is re-armed: replication still works.
  for (int i = 0; i < 50; ++i) {
    rng.fill(block);
    ASSERT_TRUE(engine->write(rng.next_below(kBlocks), block).is_ok());
  }
  ASSERT_TRUE(engine->drain().is_ok());
  Bytes want(kBs), got(kBs);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    ASSERT_TRUE(primary->read(lba, want).is_ok());
    ASSERT_TRUE(replica_disk->read(lba, got).is_ok());
    ASSERT_EQ(want, got) << "diverged at lba " << lba;
  }
  engine.reset();
  (*server)->stop();
}

// ---- PRINS_* env knob validation -------------------------------------------

TEST(EnvParseTest, ParseEnvSizeContract) {
  constexpr const char* kKnob = "PRINS_TEST_KNOB_XYZZY";  // never a real knob
  const auto with = [&](const char* value) {
    ::setenv(kKnob, value, 1);
    return parse_env_size(kKnob, 1, 64);
  };
  ::unsetenv(kKnob);
  EXPECT_EQ(parse_env_size(kKnob, 1, 64), std::nullopt);  // unset -> default
  EXPECT_EQ(with("8"), std::optional<std::size_t>(8));
  EXPECT_EQ(with("1"), std::optional<std::size_t>(1));
  EXPECT_EQ(with("64"), std::optional<std::size_t>(64));
  EXPECT_EQ(with("100"), std::optional<std::size_t>(64));  // explicit clamp
  EXPECT_EQ(with("0"), std::nullopt);      // below min: fall back, warn
  EXPECT_EQ(with("-4"), std::nullopt);     // must NOT wrap to 2^64-4
  EXPECT_EQ(with("3x"), std::nullopt);     // trailing garbage
  EXPECT_EQ(with(""), std::nullopt);
  EXPECT_EQ(with("nonsense"), std::nullopt);
  EXPECT_EQ(with("99999999999999999999999999"), std::nullopt);  // overflow
  ::unsetenv(kKnob);
}

}  // namespace
}  // namespace prins
