// Unit tests for the common substrate: status, crc, varint, rng, endian,
// histogram, hashing.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <set>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/endian.h"
#include "common/hash.h"
#include "common/hexdump.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/varint.h"

namespace prins {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = corruption("bad magic");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kCorruption);
  EXPECT_EQ(s.message(), "bad magic");
  EXPECT_EQ(s.to_string(), "CORRUPTION: bad magic");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = not_found("nope");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<Bytes> r = Bytes{1, 2, 3};
  Bytes moved = std::move(r).value();
  EXPECT_EQ(moved, (Bytes{1, 2, 3}));
}

Status fails() { return io_error("boom"); }
Status propagates() {
  PRINS_RETURN_IF_ERROR(fails());
  return Status::ok();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(propagates().code(), ErrorCode::kIoError);
}

Result<int> half(int x) {
  if (x % 2 != 0) return invalid_argument("odd");
  return x / 2;
}
Status uses_assign_or_return(int x, int* out) {
  PRINS_ASSIGN_OR_RETURN(int h, half(x));
  *out = h;
  return Status::ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(uses_assign_or_return(10, &out).is_ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(uses_assign_or_return(3, &out).code(),
            ErrorCode::kInvalidArgument);
}

// ---- CRC-32C ---------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 appendix / well-known CRC-32C test vectors.
  EXPECT_EQ(crc32c({}), 0u);
  const std::string numbers = "123456789";
  EXPECT_EQ(crc32c(as_bytes(numbers)), 0xE3069283u);
  Bytes zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  Bytes ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, ChainingMatchesWhole) {
  Rng rng(7);
  Bytes data(1000);
  rng.fill(data);
  for (std::size_t split : {0ul, 1ul, 3ul, 500ul, 999ul, 1000ul}) {
    const std::uint32_t part =
        crc32c(ByteSpan(data).subspan(split),
               crc32c(ByteSpan(data).first(split)));
    EXPECT_EQ(part, crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  Rng rng(8);
  Bytes data(256);
  rng.fill(data);
  const std::uint32_t base = crc32c(data);
  for (int trial = 0; trial < 64; ++trial) {
    Bytes copy = data;
    copy[rng.next_below(copy.size())] ^=
        static_cast<Byte>(1u << rng.next_below(8));
    if (copy == data) continue;
    EXPECT_NE(crc32c(copy), base);
  }
}

// ---- endian ----------------------------------------------------------------

TEST(EndianTest, RoundTrips) {
  Byte buf[8];
  store_le32(buf, 0x12345678u);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(load_le32(buf), 0x12345678u);
  store_be32(buf, 0x12345678u);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(load_be32(buf), 0x12345678u);
  store_le64(buf, 0x1122334455667788ull);
  EXPECT_EQ(load_le64(buf), 0x1122334455667788ull);
  store_be64(buf, 0x1122334455667788ull);
  EXPECT_EQ(load_be64(buf), 0x1122334455667788ull);
  store_be16(buf, 0xABCD);
  EXPECT_EQ(load_be16(buf), 0xABCD);
  store_le16(buf, 0xABCD);
  EXPECT_EQ(load_le16(buf), 0xABCD);
  store_be24(buf, 0x00ABCDEF);
  EXPECT_EQ(load_be24(buf), 0x00ABCDEFu);
}

TEST(EndianTest, AppendHelpers) {
  Bytes out;
  append_le16(out, 0x0102);
  append_le32(out, 0x03040506u);
  append_le64(out, 0x0708090A0B0C0D0Eull);
  ASSERT_EQ(out.size(), 14u);
  EXPECT_EQ(load_le16(ByteSpan(out).first(2)), 0x0102);
  EXPECT_EQ(load_le32(ByteSpan(out).subspan(2, 4)), 0x03040506u);
  EXPECT_EQ(load_le64(ByteSpan(out).subspan(6, 8)), 0x0708090A0B0C0D0Eull);
}

// ---- varint ----------------------------------------------------------------

TEST(VarintTest, RoundTripBoundaries) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, 0xFFFFFFFFull,
        0xFFFFFFFFFFFFFFFFull}) {
    Bytes out;
    put_varint(out, v);
    EXPECT_EQ(out.size(), varint_size(v));
    std::size_t pos = 0;
    auto back = get_varint(out, pos);
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, out.size());
  }
}

TEST(VarintTest, RandomRoundTrip) {
  Rng rng(9);
  Bytes out;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_u64() >> rng.next_below(64);
    values.push_back(v);
    put_varint(out, v);
  }
  std::size_t pos = 0;
  for (std::uint64_t v : values) {
    auto back = get_varint(out, pos);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
  EXPECT_EQ(pos, out.size());
}

TEST(VarintTest, TruncatedFails) {
  Bytes out;
  put_varint(out, 0xFFFFFFFFull);
  out.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint(out, pos).has_value());
}

TEST(VarintTest, EmptyFails) {
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint({}, pos).has_value());
}

// ---- rng -------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(42), b(42), c(43);
  bool all_same_c = true;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    all_same_c = all_same_c && (va == c.next_u64());
  }
  EXPECT_FALSE(all_same_c);  // different seeds diverge
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
    const std::uint64_t v = rng.next_in(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoolProbabilityRoughlyHolds) {
  Rng rng(4);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / trials, 2.0, 0.1);
}

TEST(RngTest, FillTextIsPrintable) {
  Rng rng(6);
  Bytes text(512);
  rng.fill_text(text);
  for (Byte b : text) {
    EXPECT_GE(b, ' ');
    EXPECT_LE(b, '~');
  }
}

TEST(ZipfTest, InRangeAndSkewed) {
  Rng rng(7);
  Zipf zipf(1000, 0.9);
  std::uint64_t low = 0, total = 10000;
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::uint64_t v = zipf.sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
    low += (v <= 100);
  }
  // Zipf(0.9): the first 10% of items should draw well over half the mass.
  EXPECT_GT(low, total / 2);
}

TEST(NurandTest, InRange) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = nurand(rng, 1023, 5, 300);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 300u);
  }
}

// ---- histogram -------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, ExactSmallValues) {
  Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_NEAR(h.mean(), 7.5, 1e-9);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 15u);
}

TEST(HistogramTest, QuantilesApproximateLargeValues) {
  Histogram h;
  Rng rng(9);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next_in(1000, 100000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const std::uint64_t p50 = h.quantile(0.5);
  const std::uint64_t exact = values[values.size() / 2];
  // log-bucketed: within ~10% relative error
  EXPECT_NEAR(static_cast<double>(p50), static_cast<double>(exact),
              0.12 * exact);
}

TEST(HistogramTest, MergeAddsUp) {
  Histogram a, b;
  a.record(10);
  a.record(20);
  b.record(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_NEAR(a.mean(), 20.0, 1e-9);
}

TEST(HistogramTest, RecordNWeightsSamples) {
  Histogram h;
  h.record_n(10, 99);
  h.record_n(1000, 1);
  h.record_n(5, 0);  // zero-count is a no-op
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), (99 * 10 + 1000) / 100.0, 1e-9);
  EXPECT_EQ(h.quantile(0.5), 10u);  // the mass sits at 10
}

TEST(HistogramTest, SummaryIsHumanReadable) {
  Histogram h;
  h.record(3);
  h.record(9);
  const std::string s = h.summary();
  EXPECT_NE(s.find("count=2"), std::string::npos);
  EXPECT_NE(s.find("max=9"), std::string::npos);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

// ---- hashing / hexdump ------------------------------------------------------

TEST(HashTest, Fnv1aDiffersOnContent) {
  EXPECT_NE(fnv1a64(as_bytes("hello")), fnv1a64(as_bytes("hellp")));
  EXPECT_EQ(fnv1a64(as_bytes("hello")), fnv1a64(as_bytes("hello")));
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total += std::popcount(mix64(0x1234567890ABCDEFull) ^
                           mix64(0x1234567890ABCDEFull ^ (1ull << bit)));
  }
  EXPECT_GT(total / 64, 20);
  EXPECT_LT(total / 64, 44);
}

TEST(HexdumpTest, FormatsAndTruncates) {
  Bytes data(300, 'A');
  const std::string dump = hexdump(data, 64);
  EXPECT_NE(dump.find("41 41"), std::string::npos);
  EXPECT_NE(dump.find("more bytes"), std::string::npos);
  EXPECT_NE(dump.find("|AAAAAAAA"), std::string::npos);
}

TEST(BytesTest, Helpers) {
  EXPECT_TRUE(all_zero(Bytes(16, 0)));
  Bytes b(16, 0);
  b[7] = 1;
  EXPECT_FALSE(all_zero(b));
  Bytes dst{1};
  append(dst, Bytes{2, 3});
  EXPECT_EQ(dst, (Bytes{1, 2, 3}));
}

}  // namespace
}  // namespace prins
