// Ablation — cluster-wide fabric traffic as the replication degree grows.
//
// The queueing figures define population = nodes × replicas; this bench
// grounds that product in measured bytes: a symmetric N-node ring where
// every node replicates to R successors, swept over R, per policy.  The
// fabric total scales linearly with R for every policy — but the slope is
// the per-write payload, which is where PRINS wins.
#include <cstdio>

#include "sim/cluster.h"

int main(int argc, char** argv) {
  using namespace prins;
  std::uint64_t writes_per_node = 150;
  if (argc > 1) {
    const auto v = std::strtoull(argv[1], nullptr, 10);
    if (v > 0) writes_per_node = v;
  }

  constexpr unsigned kNodes = 6;
  std::printf("=== Cluster fabric traffic: %u nodes, R replicas each, "
              "8 KB blocks, ~10%% dirty writes ===\n\n",
              kNodes);
  std::printf("%-4s %-10s %16s %16s %14s %8s\n", "R", "population",
              "traditional KB", "PRINS KB", "ratio", "ok");

  for (unsigned r = 1; r <= 3; ++r) {
    double kb[2] = {0, 0};
    bool ok = true;
    int i = 0;
    for (ReplicationPolicy policy :
         {ReplicationPolicy::kTraditional, ReplicationPolicy::kPrins}) {
      ClusterConfig config;
      config.nodes = kNodes;
      config.replicas_per_node = r;
      config.policy = policy;
      config.block_size = 8192;
      config.blocks_per_node = 256;
      config.dirty_bytes_per_write = 800;
      config.seed = 42;
      SymmetricCluster cluster(config);
      auto report = cluster.run(writes_per_node);
      if (!report.is_ok()) {
        std::fprintf(stderr, "cluster run failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      ok = ok && report->all_replicas_consistent;
      kb[i++] = static_cast<double>(report->fabric.payload_bytes) / 1024.0;
    }
    std::printf("%-4u %-10u %16.1f %16.1f %13.1fx %8s\n", r, kNodes * r,
                kb[0], kb[1], kb[0] / kb[1], ok ? "yes" : "NO");
  }
  std::printf("\nfabric bytes grow linearly with R under both policies; "
              "PRINS shrinks the slope ~an order of magnitude.\n\n");
  return 0;
}
