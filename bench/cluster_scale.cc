// Ablation — cluster-wide fabric traffic as the replication degree grows.
//
// The queueing figures define population = nodes × replicas; this bench
// grounds that product in measured bytes: a symmetric N-node ring where
// every node replicates to R successors, swept over R, per policy.  The
// fabric total scales linearly with R for every policy — but the slope is
// the per-write payload, which is where PRINS wins.
#include <cstdio>

#include "bench_common.h"
#include "sim/cluster.h"

int main(int argc, char** argv) {
  using namespace prins;
  std::uint64_t writes_per_node = 150;
  if (argc > 1) {
    const auto v = std::strtoull(argv[1], nullptr, 10);
    if (v > 0) writes_per_node = v;
  }

  constexpr unsigned kNodes = 6;
  std::printf("=== Cluster fabric traffic: %u nodes, R replicas each, "
              "8 KB blocks, ~10%% dirty writes ===\n\n",
              kNodes);
  std::printf("%-4s %-10s %16s %16s %14s %12s %8s\n", "R", "population",
              "traditional KB", "PRINS KB", "ratio", "writes/s", "ok");

  for (unsigned r = 1; r <= 3; ++r) {
    double kb[2] = {0, 0};
    double writes_per_sec = 0;
    bool ok = true;
    int i = 0;
    for (ReplicationPolicy policy :
         {ReplicationPolicy::kTraditional, ReplicationPolicy::kPrins}) {
      ClusterConfig config;
      config.nodes = kNodes;
      config.replicas_per_node = r;
      config.policy = policy;
      config.block_size = 8192;
      config.blocks_per_node = 256;
      config.dirty_bytes_per_write = 800;
      config.seed = 42;
      SymmetricCluster cluster(config);
      const auto start = bench::Clock::now();
      auto report = cluster.run(writes_per_node);
      const double elapsed = bench::seconds_since(start);
      if (!report.is_ok()) {
        std::fprintf(stderr, "cluster run failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      ok = ok && report->all_replicas_consistent;
      kb[i++] = static_cast<double>(report->fabric.payload_bytes) / 1024.0;
      if (policy == ReplicationPolicy::kPrins && elapsed > 0) {
        writes_per_sec = static_cast<double>(report->total_writes) / elapsed;
      }
    }
    std::printf("%-4u %-10u %16.1f %16.1f %13.1fx %12.0f %8s\n", r,
                kNodes * r, kb[0], kb[1], kb[0] / kb[1], writes_per_sec,
                ok ? "yes" : "NO");
  }
  std::printf("\nfabric bytes grow linearly with R under both policies; "
              "PRINS shrinks the slope ~an order of magnitude.\n\n");

  // End-to-end throughput as the sender pipeline deepens and same-LBA
  // deltas coalesce (R = 2, PRINS policy).  Every engine fans out to its
  // replicas from dedicated per-link sender threads, so throughput is set
  // by the slowest link, not the sum of all links.
  std::printf("=== Write throughput vs pipeline depth and coalescing "
              "(R = 2, PRINS) ===\n\n");
  std::printf("%-16s %-10s %12s %14s %8s\n", "pipeline_depth", "coalesce",
              "writes/s", "fabric msgs", "ok");
  for (const std::size_t depth : {std::size_t{1}, std::size_t{8},
                                  std::size_t{32}}) {
    for (const bool coalesce : {false, true}) {
      ClusterConfig config;
      config.nodes = kNodes;
      config.replicas_per_node = 2;
      config.policy = ReplicationPolicy::kPrins;
      config.block_size = 8192;
      config.blocks_per_node = 64;  // small volume: hot blocks re-written
      config.dirty_bytes_per_write = 800;
      config.seed = 42;
      config.pipeline_depth = depth;
      config.coalesce_writes = coalesce;
      SymmetricCluster cluster(config);
      const auto start = bench::Clock::now();
      auto report = cluster.run(writes_per_node);
      const double elapsed = bench::seconds_since(start);
      if (!report.is_ok()) {
        std::fprintf(stderr, "cluster run failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      const double wps =
          elapsed > 0 ? static_cast<double>(report->total_writes) / elapsed
                      : 0.0;
      std::printf("%-16zu %-10s %12.0f %14llu %8s\n", depth,
                  coalesce ? "on" : "off", wps,
                  static_cast<unsigned long long>(report->fabric.messages),
                  report->all_replicas_consistent ? "yes" : "NO");
    }
  }
  std::printf("\ndeeper pipelines amortize link round-trips; coalescing "
              "folds hot-block deltas into fewer, larger messages.\n\n");
  return 0;
}
