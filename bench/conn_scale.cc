// Connection-scaling face-off: thread-per-link blocking TCP vs the epoll
// reactor transport.
//
// Both servers run the same closed-loop echo workload — every connection
// ping-pongs a small frame, so each in-flight message measures one full
// round trip through the transport under test:
//
//   thread-per-link   TcpListener + one blocking thread per accepted
//                     connection (the pre-reactor architecture: 2 threads
//                     of stack + scheduler load per link, counting both
//                     ends)
//   reactor           ReactorListener + handler-mode echo: a fixed pool of
//                     event loops serves every connection, no thread per
//                     link
//
// The client driver is the reactor in handler mode for BOTH servers, so
// the measured difference is server architecture, not client scheduling.
// A cell is "sustained" when every round trip completes inside the
// watchdog.  The headline number is the largest sustained connection
// count of each server and the reactor's p50 at 8x the baseline's count —
// the paper's reliability argument assumes many initiator sessions per
// storage node, which is exactly what thread-per-link runs out of first.
//
// Results land in BENCH_conn_scale.json; --quick shrinks the matrix so the
// binary doubles as a ctest smoke test.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/reactor.h"
#include "net/reactor_tcp.h"
#include "net/tcp.h"

namespace prins {
namespace {

using bench::Clock;
using bench::to_us;

constexpr std::size_t kPayloadBytes = 64;

struct CellResult {
  const char* server;
  std::size_t conns;
  bool sustained;
  double msgs_per_sec;
  double p50_us;
  double p99_us;
};

// Per-connection closed-loop state.  Each connection's handler runs only
// on its own reactor loop, so the non-atomic fields are single-threaded.
struct ConnLoop {
  std::shared_ptr<Transport> transport;
  Clock::time_point sent;
  std::vector<double> lat_us;
  std::size_t rounds = 0;
};

// Drive `conns` closed-loop connections against 127.0.0.1:port and fill
// `cell` with round-trip stats.  Returns false on a watchdog trip (the
// server could not sustain the load).
bool drive_clients(std::shared_ptr<ReactorPool> pool, std::uint16_t port,
                   std::size_t conns, std::size_t rounds, CellResult* cell) {
  const Bytes ping(kPayloadBytes, Byte{0x42});
  auto done = std::make_shared<std::atomic<std::size_t>>(0);
  std::vector<std::unique_ptr<ConnLoop>> loops;
  loops.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    auto transport = ReactorTcpTransport::connect(
        pool->next().shared_from_this(), "127.0.0.1", port);
    if (!transport.is_ok()) {
      std::fprintf(stderr, "conn %zu: %s\n", i,
                   transport.status().to_string().c_str());
      return false;
    }
    auto loop = std::make_unique<ConnLoop>();
    loop->transport = std::move(*transport);
    loop->lat_us.reserve(rounds);
    loop->rounds = rounds;
    ConnLoop* raw = loop.get();
    // The handler holds the transport shared_ptr, so a late echo can never
    // outlive its connection; the cycle is broken below by resetting the
    // handler before the loops are torn down.
    static_cast<ReactorTcpTransport*>(loop->transport.get())
        ->set_message_handler([raw, t = loop->transport, ping,
                               done](Bytes&&) {
          raw->lat_us.push_back(to_us(Clock::now() - raw->sent));
          if (raw->lat_us.size() < raw->rounds) {
            raw->sent = Clock::now();
            (void)t->send(ping);
          } else {
            done->fetch_add(1, std::memory_order_relaxed);
          }
        });
    loops.push_back(std::move(loop));
  }

  const auto start = Clock::now();
  for (auto& loop : loops) {
    loop->sent = Clock::now();
    if (!loop->transport->send(ping).is_ok()) return false;
  }
  const auto deadline = start + std::chrono::seconds(120);
  while (done->load(std::memory_order_relaxed) < conns) {
    if (Clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool sustained = done->load(std::memory_order_relaxed) == conns;
  const double secs = bench::seconds_since(start);

  for (auto& loop : loops) {
    static_cast<ReactorTcpTransport*>(loop->transport.get())
        ->set_message_handler(nullptr);
    loop->transport->close();
  }

  std::vector<double> all;
  all.reserve(conns * rounds);
  for (auto& loop : loops) {
    all.insert(all.end(), loop->lat_us.begin(), loop->lat_us.end());
  }
  cell->conns = conns;
  cell->sustained = sustained;
  cell->msgs_per_sec = secs > 0 ? static_cast<double>(all.size()) / secs : 0;
  const bench::LatencySummary lat = bench::summarize_latencies(all);
  cell->p50_us = lat.p50_us;
  cell->p99_us = lat.p99_us;
  return sustained;
}

bool run_thread_per_link(std::shared_ptr<ReactorPool> client_pool,
                         std::size_t conns, std::size_t rounds,
                         CellResult* cell) {
  cell->server = "thread-per-link";
  auto listener = TcpListener::listen(0);
  if (!listener.is_ok()) return false;
  std::atomic<bool> accepting{true};
  std::vector<std::thread> workers;
  std::thread acceptor([&] {
    while (accepting.load()) {
      auto conn = (*listener)->accept();
      if (!conn.is_ok()) return;
      workers.emplace_back(
          [t = std::shared_ptr<Transport>(std::move(*conn))] {
            for (;;) {
              auto got = t->recv();
              if (!got.is_ok() || !t->send(*got).is_ok()) return;
            }
          });
    }
  });

  const bool ok =
      drive_clients(client_pool, (*listener)->port(), conns, rounds, cell);
  accepting.store(false);
  (*listener)->close();
  acceptor.join();
  for (auto& w : workers) w.join();
  return ok;
}

bool run_reactor(std::shared_ptr<ReactorPool> client_pool,
                 std::shared_ptr<ReactorPool> server_pool, std::size_t conns,
                 std::size_t rounds, CellResult* cell) {
  cell->server = "reactor";
  auto listener = ReactorListener::listen(server_pool, 0);
  if (!listener.is_ok()) return false;
  std::atomic<bool> accepting{true};
  std::vector<std::shared_ptr<Transport>> server_conns;
  std::thread acceptor([&] {
    while (accepting.load()) {
      auto conn = (*listener)->accept();
      if (!conn.is_ok()) return;
      std::shared_ptr<Transport> t = std::move(*conn);
      static_cast<ReactorTcpTransport*>(t.get())->set_message_handler(
          [t](Bytes&& m) { (void)t->send(m); });
      server_conns.push_back(std::move(t));
    }
  });

  const bool ok =
      drive_clients(client_pool, (*listener)->port(), conns, rounds, cell);
  accepting.store(false);
  (*listener)->close();
  acceptor.join();
  for (auto& conn : server_conns) {
    static_cast<ReactorTcpTransport*>(conn.get())->set_message_handler(
        nullptr);
  }
  return ok;
}

}  // namespace
}  // namespace prins

int main(int argc, char** argv) {
  using namespace prins;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // Roughly constant message volume per cell so big-conn cells don't take
  // proportionally longer; every connection still completes `rounds` full
  // round trips.
  const std::size_t msg_target = quick ? 2000 : 40000;
  const std::vector<std::size_t> baseline_counts =
      quick ? std::vector<std::size_t>{8} : std::vector<std::size_t>{16, 128};
  const std::vector<std::size_t> reactor_counts =
      quick ? std::vector<std::size_t>{8, 64}
            : std::vector<std::size_t>{16, 128, 512, 1024};

  auto client_pool = ReactorPool::create(2);
  auto server_pool = ReactorPool::create(2);
  if (!client_pool.is_ok() || !server_pool.is_ok()) {
    std::fprintf(stderr, "reactor pool creation failed\n");
    return 1;
  }

  std::vector<CellResult> cells;
  std::size_t baseline_max = 0;
  std::size_t reactor_max = 0;
  std::printf("%-16s %8s %6s %12s %10s %10s\n", "server", "conns", "ok",
              "msgs/s", "p50_us", "p99_us");
  for (std::size_t conns : baseline_counts) {
    const std::size_t rounds = std::max<std::size_t>(10, msg_target / conns);
    CellResult cell{};
    const bool ok =
        run_thread_per_link(*client_pool, conns, rounds, &cell);
    if (ok) baseline_max = conns;
    cells.push_back(cell);
    std::printf("%-16s %8zu %6s %12.0f %10.1f %10.1f\n", cell.server, conns,
                ok ? "yes" : "NO", cell.msgs_per_sec, cell.p50_us,
                cell.p99_us);
  }
  for (std::size_t conns : reactor_counts) {
    const std::size_t rounds = std::max<std::size_t>(10, msg_target / conns);
    CellResult cell{};
    const bool ok =
        run_reactor(*client_pool, *server_pool, conns, rounds, &cell);
    if (ok) reactor_max = conns;
    cells.push_back(cell);
    std::printf("%-16s %8zu %6s %12.0f %10.1f %10.1f\n", cell.server, conns,
                ok ? "yes" : "NO", cell.msgs_per_sec, cell.p50_us,
                cell.p99_us);
  }

  // The headline comparison: the reactor at its max sustained count vs the
  // thread-per-link baseline at its own.
  double baseline_p50 = 0, reactor_p50_at_scale = 0;
  for (const CellResult& c : cells) {
    if (std::strcmp(c.server, "thread-per-link") == 0 &&
        c.conns == baseline_max) {
      baseline_p50 = c.p50_us;
    }
    if (std::strcmp(c.server, "reactor") == 0 && c.conns == reactor_max) {
      reactor_p50_at_scale = c.p50_us;
    }
  }
  const double scale =
      baseline_max > 0
          ? static_cast<double>(reactor_max) / static_cast<double>(baseline_max)
          : 0.0;
  std::printf("\nmax sustained: thread-per-link=%zu reactor=%zu (%.1fx)\n",
              baseline_max, reactor_max, scale);

  FILE* json = std::fopen("BENCH_conn_scale.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"payload_bytes\": %zu,\n", kPayloadBytes);
    std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(json, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(json, "  \"baseline_max_conns\": %zu,\n", baseline_max);
    std::fprintf(json, "  \"reactor_max_conns\": %zu,\n", reactor_max);
    std::fprintf(json, "  \"conn_scale_factor\": %.1f,\n", scale);
    std::fprintf(json, "  \"baseline_p50_us_at_max\": %.1f,\n", baseline_p50);
    std::fprintf(json, "  \"reactor_p50_us_at_max\": %.1f,\n",
                 reactor_p50_at_scale);
    std::fprintf(json, "  \"rows\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellResult& c = cells[i];
      std::fprintf(json,
                   "    {\"server\": \"%s\", \"conns\": %zu, "
                   "\"sustained\": %s, \"msgs_per_sec\": %.1f, "
                   "\"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
                   c.server, c.conns, c.sustained ? "true" : "false",
                   c.msgs_per_sec, c.p50_us, c.p99_us,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_conn_scale.json\n");
  }
  return 0;
}
