// Figure 4 — TPC-C on Oracle: KB transferred for replication vs block size.
//
// Paper setup: Oracle 10g, 5 warehouses, 25 users, ~1 hour per block size.
// Paper result: at 8 KB PRINS is ~10x below traditional and ~5x below
// traditional+compression; at 64 KB the gaps grow to ~100x and ~23x, and
// PRINS traffic is essentially flat in block size.
#include "bench/fig_common.h"
#include "workload/tpcc.h"

int main(int argc, char** argv) {
  using namespace prins;
  bench::FigureSpec spec;
  spec.title = "Figure 4: TPC-C / Oracle profile — replication traffic";
  spec.paper_expectation =
      "8KB: ~10x vs traditional, ~5x vs compressed; 64KB: ~100x / ~23x; "
      "PRINS flat in block size";
  spec.transactions = bench::transactions_from_argv(argc, argv, 800);

  WorkloadFactory factory = [] {
    TpccConfig config;
    config.profile = oracle_profile();
    config.warehouses = 5;
    config.districts_per_warehouse = 10;
    config.customers_per_district = 150;
    config.items = 1000;
    config.order_capacity = 30000;
    config.seed = 20060104;
    return std::make_unique<Tpcc>(config);
  };
  return bench::run_figure(spec, factory);
}
