// Node-thread face-off for replica serving: thread-per-connection
// (replica_serve_in_background: one demux thread + private pipeline per
// session) vs the thread-free ReactorReplicaServer (handler-driven demux
// into one shared set of LBA-striped apply workers).
//
// Every cell drives N initiator connections, each streaming windowed
// PRINS parity deltas (kWrite, ZeroRle-framed) into a fresh 4-shard
// replica and counting cumulative acks (kAck = 1, kAckBatch = sum of its
// range lengths).  The initiators are reactor-handler clients for BOTH
// servers, so client threading is constant across cells and the measured
// thread count tracks the server architecture:
//
//   thread-per-conn   O(connections) node threads — each accepted session
//                     parks a blocking demux thread plus its own workers
//   reactor           O(reactor_threads + apply_shards) node threads no
//                     matter how many initiators are connected
//
// "threads" below is the peak `Threads:` value from /proc/self/status
// during the cell minus the pre-server baseline, i.e. the threads the
// serving architecture itself costs.  The headline claims are (a) the
// reactor sustains >= 64 connections on a handful of node threads and
// (b) its applies/s at matched connection count stays within ~10% of the
// threaded baseline — event-driven demux does not tax the apply pipeline.
//
// Results land in BENCH_node_threads.json; --quick shrinks the matrix so
// the binary doubles as a ctest / CI smoke test.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "block/mem_disk.h"
#include "codec/codec.h"
#include "net/reactor.h"
#include "net/reactor_tcp.h"
#include "net/tcp.h"
#include "prins/message.h"
#include "prins/reactor_server.h"
#include "prins/replica.h"

namespace prins {
namespace {

using bench::Clock;

constexpr std::uint32_t kBs = 4096;
constexpr std::uint64_t kBlocks = 1024;
constexpr std::size_t kApplyShards = 4;
constexpr std::uint64_t kWindow = 32;  // outstanding deltas per connection

// Current thread count of this process (the node under test hosts the
// replica AND the initiators, so cells report deltas from a baseline
// sampled before their server starts).
std::size_t count_threads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoul(line.c_str() + 8, nullptr, 10));
    }
  }
  return 0;
}

struct CellResult {
  const char* server;
  std::size_t conns;
  bool sustained;
  double applies_per_sec;
  std::size_t node_threads;  // peak during cell minus pre-server baseline
};

// Per-connection windowed initiator.  Every send — including the opening
// window, which is post()ed onto the connection's reactor — happens on
// that one loop thread, so the non-atomic fields are single-threaded.
struct InitiatorLoop {
  std::shared_ptr<Transport> transport;
  std::shared_ptr<Reactor> reactor;  // the loop this connection lives on
  Bytes payload;  // pre-encoded ZeroRle delta frame, reused every message
  std::uint64_t seq_base = 0;
  Lba lba_base = 0;
  std::uint64_t lba_span = 1;
  std::uint64_t sent = 0;
  std::uint64_t acked = 0;
  std::uint64_t target = 0;
};

bool send_delta(InitiatorLoop* loop) {
  ReplicationMessage msg;
  msg.kind = MessageKind::kWrite;
  msg.policy = ReplicationPolicy::kPrinsRle;
  msg.block_size = kBs;
  msg.lba = loop->lba_base + (loop->sent % loop->lba_span);
  msg.sequence = loop->seq_base + loop->sent;
  msg.timestamp_us = msg.sequence;
  msg.payload = loop->payload;
  if (!loop->transport->send(msg.encode()).is_ok()) return false;
  ++loop->sent;
  return true;
}

// Drive `conns` windowed initiators against 127.0.0.1:port until each has
// `per_conn` deltas acked, sampling the process thread peak along the
// way.  Returns false on a watchdog trip.
bool drive_initiators(std::shared_ptr<ReactorPool> pool, std::uint16_t port,
                      std::size_t conns, std::uint64_t per_conn,
                      std::size_t threads_before, CellResult* cell) {
  // A sparse delta, as PRINS produces for small in-place updates: ZeroRle
  // collapses the untouched tail so the wire cost matches the paper's
  // delta-compression setting.
  Bytes delta(kBs, Byte{0});
  for (std::size_t i = 0; i < 64; ++i) {
    delta[i] = static_cast<Byte>(0xa5u + i);
  }
  const Bytes payload = encode_frame(codec_for(CodecId::kZeroRle), delta);

  auto done = std::make_shared<std::atomic<std::size_t>>(0);
  std::vector<std::unique_ptr<InitiatorLoop>> loops;
  loops.reserve(conns);
  const std::uint64_t span = std::max<std::uint64_t>(1, kBlocks / conns);
  for (std::size_t i = 0; i < conns; ++i) {
    auto reactor = pool->next().shared_from_this();
    auto transport =
        ReactorTcpTransport::connect(reactor, "127.0.0.1", port);
    if (!transport.is_ok()) {
      std::fprintf(stderr, "conn %zu: %s\n", i,
                   transport.status().to_string().c_str());
      return false;
    }
    auto loop = std::make_unique<InitiatorLoop>();
    loop->transport = std::move(*transport);
    loop->reactor = std::move(reactor);
    loop->payload = payload;
    // The replica's dedup window is global across sessions, so every
    // connection gets a disjoint sequence range.
    loop->seq_base = (static_cast<std::uint64_t>(i) + 1) * 10'000'000ull;
    loop->lba_base = static_cast<Lba>(i % conns) * span % kBlocks;
    loop->lba_span = span;
    loop->target = per_conn;
    InitiatorLoop* raw = loop.get();
    // The handler holds the transport shared_ptr, so a late ack can never
    // outlive its connection; the cycle is broken after the run by
    // resetting the handler before the loops are torn down.
    static_cast<ReactorTcpTransport*>(loop->transport.get())
        ->set_message_handler([raw, t = loop->transport, done](Bytes&& wire) {
          auto reply = ReplicationMessage::decode(wire);
          if (!reply.is_ok()) return;
          std::uint64_t covered = 1;
          if (reply->kind == MessageKind::kAckBatch) {
            auto ranges = unpack_ack_ranges(reply->payload);
            if (!ranges.is_ok()) return;
            covered = 0;
            for (const AckRange& range : *ranges) covered += range.count;
          }
          const bool was_done = raw->acked >= raw->target;
          raw->acked += covered;
          while (raw->sent < raw->target &&
                 raw->sent - raw->acked < kWindow) {
            if (!send_delta(raw)) return;
          }
          if (!was_done && raw->acked >= raw->target) {
            done->fetch_add(1, std::memory_order_relaxed);
          }
        });
    loops.push_back(std::move(loop));
  }

  const auto start = Clock::now();
  // Prime each window on its own connection's loop thread: acks start
  // flowing the moment the first delta lands, so sending from here would
  // race the handler's refill.  A send failure surfaces as an unsustained
  // cell via the watchdog below.
  for (auto& loop : loops) {
    InitiatorLoop* raw = loop.get();
    loop->reactor->post([raw] {
      for (std::uint64_t k = 0; k < std::min(kWindow, raw->target); ++k) {
        if (!send_delta(raw)) return;
      }
    });
  }
  const auto deadline = start + std::chrono::seconds(120);
  std::size_t peak_threads = count_threads();
  while (done->load(std::memory_order_relaxed) < conns) {
    if (Clock::now() > deadline) break;
    peak_threads = std::max(peak_threads, count_threads());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool sustained = done->load(std::memory_order_relaxed) == conns;
  const double secs = bench::seconds_since(start);

  std::uint64_t total_acked = 0;
  for (auto& loop : loops) {
    static_cast<ReactorTcpTransport*>(loop->transport.get())
        ->set_message_handler(nullptr);
    total_acked += loop->acked;
    loop->transport->close();
  }

  cell->conns = conns;
  cell->sustained = sustained;
  cell->applies_per_sec =
      secs > 0 ? static_cast<double>(total_acked) / secs : 0;
  cell->node_threads =
      peak_threads > threads_before ? peak_threads - threads_before : 0;
  return sustained;
}

std::shared_ptr<ReplicaEngine> fresh_replica() {
  ReplicaConfig rconfig;
  rconfig.apply_shards = kApplyShards;
  auto disk = std::make_shared<MemDisk>(kBlocks, kBs);
  return std::make_shared<ReplicaEngine>(disk, rconfig);
}

bool run_thread_per_conn(std::shared_ptr<ReactorPool> client_pool,
                         std::size_t conns, std::uint64_t per_conn,
                         CellResult* cell) {
  cell->server = "thread-per-conn";
  auto replica = fresh_replica();
  auto listener = TcpListener::listen(0);
  if (!listener.is_ok()) return false;
  const std::uint16_t port = (*listener)->port();
  const std::size_t threads_before = count_threads();
  auto shared_listener = std::shared_ptr<Listener>(std::move(*listener));
  std::thread server = replica_serve_in_background(replica, shared_listener);

  const bool ok = drive_initiators(client_pool, port, conns, per_conn,
                                   threads_before, cell);
  shared_listener->close();
  server.join();
  return ok;
}

bool run_reactor(std::shared_ptr<ReactorPool> client_pool,
                 std::size_t server_loops, std::size_t conns,
                 std::uint64_t per_conn, CellResult* cell) {
  cell->server = "reactor";
  auto replica = fresh_replica();
  const std::size_t threads_before = count_threads();
  auto server_pool = ReactorPool::create(server_loops);
  if (!server_pool.is_ok()) return false;
  auto server = ReactorReplicaServer::start(replica, *server_pool);
  if (!server.is_ok()) {
    std::fprintf(stderr, "reactor server: %s\n",
                 server.status().to_string().c_str());
    return false;
  }

  const bool ok = drive_initiators(client_pool, (*server)->port(), conns,
                                   per_conn, threads_before, cell);
  (*server)->stop();
  return ok;
}

}  // namespace
}  // namespace prins

int main(int argc, char** argv) {
  using namespace prins;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // Roughly constant delta volume per cell so big-conn cells don't take
  // proportionally longer; every connection still streams a meaningful
  // windowed run.
  const std::uint64_t msg_target = quick ? 4000 : 64000;
  const std::vector<std::size_t> baseline_counts =
      quick ? std::vector<std::size_t>{8} : std::vector<std::size_t>{8, 64};
  const std::vector<std::size_t> reactor_counts =
      quick ? std::vector<std::size_t>{8, 64}
            : std::vector<std::size_t>{8, 64, 256};
  const std::size_t server_loops = 2;

  auto client_pool = ReactorPool::create(2);
  if (!client_pool.is_ok()) {
    std::fprintf(stderr, "reactor pool creation failed\n");
    return 1;
  }

  std::vector<CellResult> cells;
  std::printf("block=%u shards=%zu window=%llu\n", kBs, kApplyShards,
              static_cast<unsigned long long>(kWindow));
  std::printf("%-16s %8s %6s %14s %10s\n", "server", "conns", "ok",
              "applies/s", "threads");
  auto run_cell = [&](bool ok, const CellResult& cell) {
    cells.push_back(cell);
    std::printf("%-16s %8zu %6s %14.0f %10zu\n", cell.server, cell.conns,
                ok ? "yes" : "NO", cell.applies_per_sec, cell.node_threads);
  };
  for (std::size_t conns : baseline_counts) {
    const std::uint64_t per_conn =
        std::max<std::uint64_t>(50, msg_target / conns);
    CellResult cell{};
    run_cell(run_thread_per_conn(*client_pool, conns, per_conn, &cell), cell);
  }
  for (std::size_t conns : reactor_counts) {
    const std::uint64_t per_conn =
        std::max<std::uint64_t>(50, msg_target / conns);
    CellResult cell{};
    run_cell(run_reactor(*client_pool, server_loops, conns, per_conn, &cell),
             cell);
  }

  // Headline: thread cost at each server's largest sustained count, and
  // the apply-throughput ratio at the largest connection count BOTH
  // sustained (same 4-shard apply pipeline, so this should sit near 1.0).
  std::size_t baseline_threads_at_max = 0, reactor_threads_at_max = 0;
  std::size_t baseline_max = 0, reactor_max = 0;
  for (const CellResult& c : cells) {
    if (!c.sustained) continue;
    if (std::strcmp(c.server, "thread-per-conn") == 0) {
      if (c.conns >= baseline_max) {
        baseline_max = c.conns;
        baseline_threads_at_max = c.node_threads;
      }
    } else if (c.conns >= reactor_max) {
      reactor_max = c.conns;
      reactor_threads_at_max = c.node_threads;
    }
  }
  double baseline_rate = 0, reactor_rate = 0;
  const std::size_t common = std::min(baseline_max, reactor_max);
  for (const CellResult& c : cells) {
    if (!c.sustained || c.conns != common) continue;
    if (std::strcmp(c.server, "thread-per-conn") == 0) {
      baseline_rate = c.applies_per_sec;
    } else {
      reactor_rate = c.applies_per_sec;
    }
  }
  const double rate_ratio =
      baseline_rate > 0 ? reactor_rate / baseline_rate : 0.0;
  std::printf(
      "\nnode threads at max sustained: thread-per-conn=%zu@%zu "
      "reactor=%zu@%zu; applies/s ratio (reactor/baseline) = %.2f\n",
      baseline_threads_at_max, baseline_max, reactor_threads_at_max,
      reactor_max, rate_ratio);

  FILE* json = std::fopen("BENCH_node_threads.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"block_size\": %u,\n", kBs);
    std::fprintf(json, "  \"apply_shards\": %zu,\n", kApplyShards);
    std::fprintf(json, "  \"window\": %llu,\n",
                 static_cast<unsigned long long>(kWindow));
    std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(json, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(json, "  \"reactor_loops\": %zu,\n", server_loops);
    std::fprintf(json, "  \"baseline_max_conns\": %zu,\n", baseline_max);
    std::fprintf(json, "  \"reactor_max_conns\": %zu,\n", reactor_max);
    std::fprintf(json, "  \"baseline_threads_at_max\": %zu,\n",
                 baseline_threads_at_max);
    std::fprintf(json, "  \"reactor_threads_at_max\": %zu,\n",
                 reactor_threads_at_max);
    std::fprintf(json, "  \"applies_per_sec_ratio\": %.3f,\n", rate_ratio);
    std::fprintf(json, "  \"rows\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellResult& c = cells[i];
      std::fprintf(json,
                   "    {\"server\": \"%s\", \"conns\": %zu, "
                   "\"sustained\": %s, \"applies_per_sec\": %.1f, "
                   "\"node_threads\": %zu}%s\n",
                   c.server, c.conns, c.sustained ? "true" : "false",
                   c.applies_per_sec, c.node_threads,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_node_threads.json\n");
  }
  return 0;
}
