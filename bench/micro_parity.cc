// google-benchmark micro benches for the hot kernels: XOR parity, CRC,
// and the payload codecs at representative block sizes.
#include <benchmark/benchmark.h>

#include "codec/codec.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "parity/xor.h"
#include "workload/text.h"

namespace {

using namespace prins;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  rng.fill(b);
  return b;
}

Bytes sparse_parity(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n, 0);
  const std::size_t len = n / 10;
  rng.fill(MutByteSpan(b).subspan(rng.next_below(n - len + 1), len));
  return b;
}

void BM_XorInto(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Bytes dst = random_bytes(n, 1);
  const Bytes src = random_bytes(n, 2);
  for (auto _ : state) {
    xor_into(dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_XorInto)->Arg(4096)->Arg(8192)->Arg(65536);

void BM_ParityDelta(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Bytes a = random_bytes(n, 3);
  const Bytes b = random_bytes(n, 4);
  for (auto _ : state) {
    Bytes delta = parity_delta(a, b);
    benchmark::DoNotOptimize(delta.data());
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParityDelta)->Arg(8192)->Arg(65536);

void BM_Crc32c(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Bytes data = random_bytes(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void BM_ZeroRleEncodeSparse(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Bytes parity = sparse_parity(n, 6);
  const Codec& codec = codec_for(CodecId::kZeroRle);
  for (auto _ : state) {
    Bytes out = codec.encode(parity);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_ZeroRleEncodeSparse)->Arg(8192)->Arg(65536);

void BM_ZeroRleLzEncodeSparse(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Bytes parity = sparse_parity(n, 7);
  const Codec& codec = codec_for(CodecId::kZeroRleLz);
  for (auto _ : state) {
    Bytes out = codec.encode(parity);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_ZeroRleLzEncodeSparse)->Arg(8192)->Arg(65536);

void BM_LzEncodeText(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(8);
  Bytes text(n);
  fill_words(rng, text);
  const Codec& codec = codec_for(CodecId::kLz);
  for (auto _ : state) {
    Bytes out = codec.encode(text);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_LzEncodeText)->Arg(8192)->Arg(65536);

void BM_LzDecodeText(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Rng rng(9);
  Bytes text(n);
  fill_words(rng, text);
  const Codec& codec = codec_for(CodecId::kLz);
  const Bytes body = codec.encode(text);
  for (auto _ : state) {
    auto out = codec.decode(body, n);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_LzDecodeText)->Arg(8192)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
