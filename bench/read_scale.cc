// Read-offload scaling: how aggregate read throughput grows as the read
// router fans freshness-checked reads out across replica mirrors.
//
// Every cell builds one primary (PrinsEngine over a throttled disk) and R
// replicas (ReplicaEngine over throttled disks of their own), wired with
// in-process transports: one replication link per replica carrying parity
// deltas, plus one read link per replica carrying kClientReadRequest
// exchanges for the router.  The throttle charges a fixed service time per
// block I/O under a per-device mutex — the classic single-spindle model —
// so serving capacity is per NODE and the only way to read faster than one
// disk is to involve more disks.  That is exactly the router's claim:
//
//   offload OFF   every read lands on the primary's disk, whatever R is
//   offload ON    conflict-free reads spread across R replica disks while
//                 the primary keeps serving writes and conflicted reads
//
// 16 closed-loop workers issue a read/write mix (100%, 95%, and 50% reads)
// against the router; reported per cell: reads/s, read p50/p99, and the
// fraction of reads that stayed local (conflict window hits + fallbacks).
// The headline — and the committed regression gate — is read throughput
// scaling at the 95%-read mix: >= 1.7x going 1 -> 2 replicas and >= 2.5x
// going 1 -> 4.
//
// Results land in BENCH_read_scale.json; --quick shrinks the matrix so the
// binary doubles as a ctest smoke test.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "prins/engine.h"
#include "prins/read_router.h"
#include "prins/replica.h"

namespace prins {
namespace {

using bench::Clock;
using bench::to_us;

constexpr std::uint32_t kBs = 4096;
constexpr std::uint64_t kBlocks = 4096;
constexpr std::size_t kWorkers = 16;
constexpr std::size_t kApplyShards = 4;

/// Service time one block I/O costs on a throttled device.  Charged by
/// SLEEPING (not spinning) so N modeled disks genuinely serve in parallel
/// even on a small or single-core host — the device is busy, the CPU is
/// not, exactly like a real spindle awaiting a platter.  Large enough to
/// dominate timer slack and the per-op CPU cost of the replication stack.
constexpr std::chrono::microseconds kServiceTime{300};

/// A single-queue disk model: one I/O at a time, each costing a fixed
/// service time.  Wraps MemDisk for the actual bytes.
class ThrottledDisk final : public BlockDevice {
 public:
  ThrottledDisk(std::uint64_t blocks, std::uint32_t block_size)
      : inner_(std::make_shared<MemDisk>(blocks, block_size)) {}

  std::uint32_t block_size() const override { return inner_->block_size(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }
  Status read(Lba lba, MutByteSpan out) override {
    std::lock_guard lock(mutex_);
    std::this_thread::sleep_for(kServiceTime);
    return inner_->read(lba, out);
  }
  Status write(Lba lba, ByteSpan data) override {
    std::lock_guard lock(mutex_);
    std::this_thread::sleep_for(kServiceTime);
    return inner_->write(lba, data);
  }
  Status flush() override { return inner_->flush(); }
  std::string describe() const override {
    return "throttled(" + inner_->describe() + ")";
  }

 private:
  std::shared_ptr<MemDisk> inner_;
  std::mutex mutex_;
};

struct CellResult {
  int read_pct = 0;
  std::size_t replicas = 0;
  double reads_per_sec = 0;
  double writes_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double local_fraction = 0;  // reads NOT served by a mirror
  std::uint64_t stale_retries = 0;
};

/// One primary + R replicas, fully wired, plus the serve threads that must
/// be joined after the transports close.
struct Cluster {
  std::shared_ptr<PrinsEngine> engine;
  std::shared_ptr<ReadRouter> router;
  std::vector<std::shared_ptr<ReplicaEngine>> replicas;
  std::vector<std::thread> serve_threads;

  ~Cluster() {
    router.reset();  // closes the read links
    engine.reset();  // closes the replication links
    for (auto& t : serve_threads) t.join();
  }
};

std::unique_ptr<Cluster> build_cluster(std::size_t replica_count) {
  auto cluster = std::make_unique<Cluster>();
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.read_from_replicas = true;
  cluster->engine = std::make_shared<PrinsEngine>(
      std::make_shared<ThrottledDisk>(kBlocks, kBs), config);
  cluster->router = std::make_shared<ReadRouter>(cluster->engine);
  for (std::size_t r = 0; r < replica_count; ++r) {
    ReplicaConfig rconfig;
    rconfig.apply_shards = kApplyShards;
    auto replica = std::make_shared<ReplicaEngine>(
        std::make_shared<ThrottledDisk>(kBlocks, kBs), rconfig);
    // Replication link: primary -> replica parity deltas.
    auto [deltas_client, deltas_server] = make_inproc_pair();
    cluster->serve_threads.emplace_back(
        [replica, t = std::shared_ptr<Transport>(std::move(deltas_server))] {
          (void)replica->serve(*t);
        });
    cluster->engine->add_replica(std::move(deltas_client));
    // Read link: router -> replica client reads.
    auto [reads_client, reads_server] = make_inproc_pair();
    cluster->serve_threads.emplace_back(
        [replica, t = std::shared_ptr<Transport>(std::move(reads_server))] {
          (void)replica->serve(*t);
        });
    cluster->router->add_read_replica(std::move(reads_client));
    cluster->replicas.push_back(std::move(replica));
  }
  return cluster;
}

bool run_cell(int read_pct, std::size_t replica_count, std::size_t total_ops,
              CellResult* cell) {
  cell->read_pct = read_pct;
  cell->replicas = replica_count;
  auto cluster = build_cluster(replica_count);

  // Prefill every block through the engine so replicas hold real data and
  // drain so the measured phase starts with the read floor fully caught up.
  Bytes seed_block(kBs);
  Rng seed_rng(11);
  for (Lba lba = 0; lba < kBlocks; ++lba) {
    seed_rng.fill(seed_block);
    if (!cluster->engine->write(lba, seed_block).is_ok()) return false;
  }
  if (!cluster->engine->drain().is_ok()) return false;

  std::atomic<std::size_t> next_op{0};
  std::atomic<bool> failed{false};
  std::vector<std::vector<double>> read_lat(kWorkers);
  std::vector<std::uint64_t> reads(kWorkers, 0), writes(kWorkers, 0);
  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(1000 + w);
      Bytes block(kBs);
      read_lat[w].reserve(total_ops / kWorkers + 1);
      while (next_op.fetch_add(1, std::memory_order_relaxed) < total_ops) {
        const Lba lba = rng.next_below(kBlocks);
        if (rng.next_below(100) < static_cast<std::uint64_t>(read_pct)) {
          const auto issued = Clock::now();
          if (!cluster->router->read(lba, block).is_ok()) {
            failed.store(true);
            return;
          }
          read_lat[w].push_back(to_us(Clock::now() - issued));
          ++reads[w];
        } else {
          rng.fill(MutByteSpan(block).subspan(0, 64));
          if (!cluster->router->write(lba, block).is_ok()) {
            failed.store(true);
            return;
          }
          ++writes[w];
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  const double secs = bench::seconds_since(start);
  if (failed.load() || secs <= 0) return false;

  std::uint64_t total_reads = 0, total_writes = 0;
  std::vector<double> all_lat;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    total_reads += reads[w];
    total_writes += writes[w];
    all_lat.insert(all_lat.end(), read_lat[w].begin(), read_lat[w].end());
  }
  const EngineMetrics m = cluster->engine->metrics();
  cell->reads_per_sec = static_cast<double>(total_reads) / secs;
  cell->writes_per_sec = static_cast<double>(total_writes) / secs;
  const bench::LatencySummary lat = bench::summarize_latencies(all_lat);
  cell->p50_us = lat.p50_us;
  cell->p99_us = lat.p99_us;
  cell->local_fraction =
      total_reads > 0
          ? 1.0 - static_cast<double>(m.replica_reads) /
                      static_cast<double>(total_reads)
          : 0.0;
  cell->stale_retries = m.stale_read_retries;
  return true;
}

}  // namespace
}  // namespace prins

int main(int argc, char** argv) {
  using namespace prins;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::size_t total_ops = quick ? 3000 : 24000;
  const std::vector<int> mixes =
      quick ? std::vector<int>{95} : std::vector<int>{100, 95, 50};
  const std::vector<std::size_t> replica_counts =
      quick ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};

  std::vector<CellResult> cells;
  std::printf("block=%u blocks=%llu workers=%zu service=%lldus\n", kBs,
              static_cast<unsigned long long>(kBlocks), kWorkers,
              static_cast<long long>(kServiceTime.count()));
  std::printf("%-6s %9s %12s %12s %9s %9s %8s %7s\n", "mix", "replicas",
              "reads/s", "writes/s", "p50_us", "p99_us", "local", "stale");
  for (int mix : mixes) {
    for (std::size_t replicas : replica_counts) {
      CellResult cell;
      if (!run_cell(mix, replicas, total_ops, &cell)) {
        std::fprintf(stderr, "cell %d%%/%zu replicas failed\n", mix, replicas);
        return 1;
      }
      cells.push_back(cell);
      std::printf("%4d%% %9zu %12.0f %12.0f %9.1f %9.1f %7.1f%% %7llu\n", mix,
                  replicas, cell.reads_per_sec, cell.writes_per_sec,
                  cell.p50_us, cell.p99_us, cell.local_fraction * 100.0,
                  static_cast<unsigned long long>(cell.stale_retries));
    }
  }

  // Headline: read-throughput scaling at the 95%-read mix, baselined at 1
  // replica.
  double base = 0, at2 = 0, at4 = 0;
  for (const CellResult& c : cells) {
    if (c.read_pct != 95) continue;
    if (c.replicas == 1) base = c.reads_per_sec;
    if (c.replicas == 2) at2 = c.reads_per_sec;
    if (c.replicas == 4) at4 = c.reads_per_sec;
  }
  const double scale_1_2 = base > 0 ? at2 / base : 0.0;
  const double scale_1_4 = base > 0 ? at4 / base : 0.0;
  std::printf("\nread scaling at 95%% mix: 1->2 replicas %.2fx, "
              "1->4 replicas %.2fx\n",
              scale_1_2, scale_1_4);

  FILE* json = std::fopen("BENCH_read_scale.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"block_size\": %u,\n", kBs);
    std::fprintf(json, "  \"blocks\": %llu,\n",
                 static_cast<unsigned long long>(kBlocks));
    std::fprintf(json, "  \"workers\": %zu,\n", kWorkers);
    std::fprintf(json, "  \"service_time_us\": %lld,\n",
                 static_cast<long long>(kServiceTime.count()));
    std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(json, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(json, "  \"read_scale_1_to_2_at_95\": %.2f,\n", scale_1_2);
    std::fprintf(json, "  \"read_scale_1_to_4_at_95\": %.2f,\n", scale_1_4);
    std::fprintf(json, "  \"rows\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellResult& c = cells[i];
      std::fprintf(json,
                   "    {\"read_pct\": %d, \"replicas\": %zu, "
                   "\"reads_per_sec\": %.1f, \"writes_per_sec\": %.1f, "
                   "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                   "\"local_fraction\": %.4f, \"stale_retries\": %llu}%s\n",
                   c.read_pct, c.replicas, c.reads_per_sec, c.writes_per_sec,
                   c.p50_us, c.p99_us, c.local_fraction,
                   static_cast<unsigned long long>(c.stale_retries),
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_read_scale.json\n");
  }
  return 0;
}
