// Replica-side apply throughput across the pipelined serve() path.
//
// A feeder streams pre-encoded kWrite frames (PRINS-rle parity deltas over
// a hot LBA set) into ReplicaEngine::serve() over an in-process transport
// and counts covered acks (kAck = 1, kAckBatch = sum of its ranges) until
// every write is retired.  Cells sweep ReplicaConfig::apply_shards over
// 1 / 4 / hardware threads with the intent log on a real file, so the
// numbers capture the three effects the pipeline stacks:
//
//   - LBA-striped workers: independent blocks decode/XOR/write in parallel
//   - intent-log group commit: N workers share one fdatasync per batch
//     (fsyncs-per-apply < 1 is the amortization the bench asserts)
//   - old-block apply cache: the read-modify-write A_old read of a hot LBA
//     is a memcpy after the first touch (hit rate reported)
//
// Results land in BENCH_replica_apply.json; --quick shrinks the write
// count so the binary doubles as a ctest smoke test.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "block/mem_disk.h"
#include "codec/codec.h"
#include "common/crc32c.h"
#include "common/endian.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "prins/intent_log.h"
#include "prins/message.h"
#include "prins/replica.h"

namespace {

using namespace prins;

constexpr std::uint32_t kBs = 4096;
constexpr std::uint64_t kDeviceBlocks = 4096;
constexpr std::uint64_t kHotBlocks = 512;   // working set the writes revisit
constexpr std::size_t kDeltaTemplates = 64;

struct Cell {
  std::size_t shards = 0;
  double applies_per_sec = 0;
  double fsyncs_per_apply = 0;
  double ack_batch_avg = 0;
  double cache_hit_rate = 0;
  std::uint64_t queue_peak = 0;
};

/// Stream `writes` parity deltas through serve() and retire every ack.
Cell run_cell(std::size_t shards, std::uint64_t writes, int index) {
  const std::string intent_path =
      "replica_apply_intents_" + std::to_string(index) + ".tmp";
  std::remove(intent_path.c_str());
  auto intent_log = WriteIntentLog::open(intent_path);
  if (!intent_log.is_ok()) {
    std::fprintf(stderr, "open intent log: %s\n",
                 intent_log.status().to_string().c_str());
    std::exit(1);
  }

  ReplicaConfig config;
  config.apply_shards = shards;
  config.intent_log = std::shared_ptr<WriteIntentLog>(std::move(*intent_log));
  config.intent_checkpoint_every = 4096;
  config.old_block_cache_blocks = kHotBlocks;  // hot set fits: misses only cold
  auto disk = std::make_shared<MemDisk>(kDeviceBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(disk, config);

  auto [primary_end, replica_end] = make_inproc_pair(/*capacity=*/256);
  std::thread server(
      [replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        (void)replica->serve(*t);
      });

  // Sparse parity deltas (one 256-byte run per block), pre-encoded once:
  // the feeder frames them scatter-gather so feeding stays cheap and the
  // replica's decode/XOR/intent/write path dominates the measurement.
  Rng rng(7);
  std::vector<Bytes> payloads;
  payloads.reserve(kDeltaTemplates);
  for (std::size_t i = 0; i < kDeltaTemplates; ++i) {
    Bytes delta(kBs, 0);
    const std::size_t off = rng.next_below(kBs / 256) * 256;
    for (std::size_t j = 0; j < 256; ++j) {
      delta[off + j] = static_cast<Byte>(rng.next_u64());
    }
    payloads.push_back(encode_frame(codec_for(CodecId::kZeroRle), delta));
  }

  Transport& wire = *primary_end;
  const auto start = std::chrono::steady_clock::now();
  std::thread feeder([&] {
    for (std::uint64_t i = 0; i < writes; ++i) {
      ReplicationMessage msg;
      msg.kind = MessageKind::kWrite;
      msg.policy = ReplicationPolicy::kPrinsRle;
      msg.block_size = kBs;
      msg.lba = (i * 2654435761ULL) % kHotBlocks;  // spread across shards
      msg.sequence = i + 1;
      msg.timestamp_us = i + 1;
      const Bytes& payload = payloads[i % kDeltaTemplates];
      Byte header[ReplicationMessage::kWireHeaderSize];
      msg.encode_header(header, payload.size());
      std::uint32_t crc = crc32c(ByteSpan(header));
      crc = crc32c(ByteSpan(payload), crc);
      Byte trailer[4];
      store_le32(trailer, crc);
      const ByteSpan parts[] = {ByteSpan(header), ByteSpan(payload),
                                ByteSpan(trailer)};
      if (Status s = wire.send_vec(parts); !s.is_ok()) {
        std::fprintf(stderr, "feeder send: %s\n", s.to_string().c_str());
        std::exit(1);
      }
    }
  });

  // Retire acks until every write is covered.
  std::uint64_t covered = 0;
  while (covered < writes) {
    auto reply = wire.recv();
    if (!reply.is_ok()) {
      std::fprintf(stderr, "ack recv: %s\n",
                   reply.status().to_string().c_str());
      std::exit(1);
    }
    auto ack = ReplicationMessage::decode(*reply);
    if (!ack.is_ok()) {
      std::fprintf(stderr, "ack decode: %s\n",
                   ack.status().to_string().c_str());
      std::exit(1);
    }
    if (ack->kind == MessageKind::kAck) {
      covered += 1;
    } else if (ack->kind == MessageKind::kAckBatch) {
      auto ranges = unpack_ack_ranges(ack->payload);
      if (!ranges.is_ok()) {
        std::fprintf(stderr, "bad ack batch: %s\n",
                     ranges.status().to_string().c_str());
        std::exit(1);
      }
      for (const AckRange& range : *ranges) covered += range.count;
    } else {
      std::fprintf(stderr, "unexpected reply kind\n");
      std::exit(1);
    }
  }
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  feeder.join();
  primary_end->close();  // serve() sees a clean disconnect
  server.join();

  const ReplicaMetrics m = replica->metrics();
  Cell cell;
  cell.shards = replica->apply_shards();
  cell.applies_per_sec = static_cast<double>(writes) / sec;
  cell.fsyncs_per_apply =
      m.intent_records > 0 ? static_cast<double>(m.intent_fsyncs) /
                                 static_cast<double>(m.intent_records)
                           : 0.0;
  cell.ack_batch_avg =
      m.ack_batches > 0 ? static_cast<double>(m.acks_batched) /
                              static_cast<double>(m.ack_batches)
                        : 0.0;
  cell.cache_hit_rate =
      m.cache_hits + m.cache_misses > 0
          ? static_cast<double>(m.cache_hits) /
                static_cast<double>(m.cache_hits + m.cache_misses)
          : 0.0;
  cell.queue_peak = m.apply_queue_peak;

  if (m.writes_applied != writes) {
    std::fprintf(stderr, "applied %llu of %llu writes\n",
                 static_cast<unsigned long long>(m.writes_applied),
                 static_cast<unsigned long long>(writes));
    std::exit(1);
  }
  std::remove(intent_path.c_str());
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::uint64_t writes = quick ? 2048 : 16384;
  const std::size_t hw = std::thread::hardware_concurrency() > 0
                             ? std::thread::hardware_concurrency()
                             : 1;

  std::printf("=== PRINS replica apply: pipelined serve() throughput "
              "(policy PRINS-rle, %u B blocks, %llu writes/cell) ===\n\n",
              kBs, static_cast<unsigned long long>(writes));
  std::printf("%8s %14s %16s %14s %15s %11s\n", "shards", "applies/s",
              "fsyncs/apply", "ack batch", "cache hitrate", "queue peak");

  std::vector<std::size_t> shard_counts{1, 4};
  if (hw > 4) shard_counts.push_back(hw);

  std::vector<Cell> cells;
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    cells.push_back(run_cell(shard_counts[i], writes, static_cast<int>(i)));
    const Cell& c = cells.back();
    std::printf("%8zu %14.0f %16.3f %14.1f %15.3f %11llu\n", c.shards,
                c.applies_per_sec, c.fsyncs_per_apply, c.ack_batch_avg,
                c.cache_hit_rate,
                static_cast<unsigned long long>(c.queue_peak));
  }

  double base = 0, sharded = 0, sharded_fsyncs = 0;
  for (const Cell& c : cells) {
    if (c.shards == 1) base = c.applies_per_sec;
    if (c.shards == 4) {
      sharded = c.applies_per_sec;
      sharded_fsyncs = c.fsyncs_per_apply;
    }
  }
  const double speedup = base > 0 ? sharded / base : 0.0;
  std::printf("\nspeedup_4_shards: %.2fx (sharded %.0f vs serial %.0f "
              "applies/s)\n",
              speedup, sharded, base);
  std::printf("fsyncs_per_apply_4_shards: %.3f\n", sharded_fsyncs);
  std::printf("hardware_threads: %zu\n", hw);

  FILE* json = std::fopen("BENCH_replica_apply.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"block_size\": %u,\n", kBs);
    std::fprintf(json, "  \"writes_per_cell\": %llu,\n",
                 static_cast<unsigned long long>(writes));
    std::fprintf(json, "  \"hardware_threads\": %zu,\n", hw);
    std::fprintf(json, "  \"speedup_4_shards\": %.3f,\n", speedup);
    std::fprintf(json, "  \"fsyncs_per_apply_4_shards\": %.3f,\n",
                 sharded_fsyncs);
    std::fprintf(json, "  \"rows\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(json,
                   "    {\"apply_shards\": %zu, \"applies_per_sec\": %.1f, "
                   "\"fsyncs_per_apply\": %.3f, \"ack_batch_avg\": %.2f, "
                   "\"cache_hit_rate\": %.3f, \"queue_peak\": %llu}%s\n",
                   c.shards, c.applies_per_sec, c.fsyncs_per_apply,
                   c.ack_batch_avg, c.cache_hit_rate,
                   static_cast<unsigned long long>(c.queue_peak),
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_replica_apply.json\n");
  }
  return 0;
}
