// Figure 7 — Ext2 file-system micro-benchmark: replication traffic.
//
// Paper setup: pick five directories, run `tar` five times, randomly
// editing files between runs.  Paper result: the largest savings of all
// workloads — at 8 KB PRINS ships 51.5x less than traditional and 10.4x
// less than compressed; at 64 KB, 166x and 33x.  Text content makes the
// compression baseline strong, but re-tarring mostly unchanged files
// makes the parity nearly empty.
#include "bench/fig_common.h"
#include "workload/fsmicro.h"

int main(int argc, char** argv) {
  using namespace prins;
  bench::FigureSpec spec;
  spec.title = "Figure 7: Ext2 micro-benchmark (tar x5) — replication traffic";
  spec.paper_expectation =
      "8KB: ~51x vs traditional, ~10x vs compressed; 64KB: ~166x / ~33x";
  // One transaction = one edit+tar round; the paper ran five.
  spec.transactions = bench::transactions_from_argv(argc, argv, 5);

  WorkloadFactory factory = [] {
    FsMicroConfig config;
    config.directories = 20;
    config.files_per_directory = 10;
    config.tar_directories = 5;
    config.min_file_bytes = 2 * 1024;
    config.max_file_bytes = 48 * 1024;
    config.edit_fraction = 0.25;
    config.seed = 20060107;
    return std::make_unique<FsMicro>(config);
  };
  return bench::run_figure(spec, factory);
}
