// Fault-recovery ablation — replication throughput as the link degrades.
//
// The self-healing sender (retry + reconnect + trap-log resync) turns
// message loss from a session-killer into a latency tax.  This bench
// grounds that tax: one primary replicating to a replica over a
// FaultyTransport, swept over the drop rate, then a hard mid-run
// disconnect healed by the reconnect factory.  Every row verifies the
// devices converged byte-for-byte — recovery that corrupts is not
// recovery.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/faulty.h"
#include "net/inproc.h"
#include "prins/engine.h"
#include "prins/replica.h"

namespace {

using namespace prins;

constexpr std::uint32_t kBs = 4096;
constexpr std::uint64_t kBlocks = 256;

bool devices_match(BlockDevice& a, BlockDevice& b) {
  Bytes ba(a.block_size()), bb(b.block_size());
  for (Lba lba = 0; lba < a.num_blocks(); ++lba) {
    if (!a.read(lba, ba).is_ok() || !b.read(lba, bb).is_ok()) return false;
    if (ba != bb) return false;
  }
  return true;
}

struct RunResult {
  double writes_per_sec = 0;
  bench::LatencySummary lat;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t auto_resyncs = 0;
  bool converged = false;
  bool ok = false;
};

RunResult run(std::uint64_t writes, double drop_p, double corrupt_p,
              std::uint64_t disconnect_after) {
  RunResult out;
  InprocNetwork network;
  auto disk = std::make_shared<MemDisk>(kBlocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(disk);
  auto listener_or = network.listen("replica");
  if (!listener_or.is_ok()) return out;
  auto listener = std::shared_ptr<Listener>(std::move(*listener_or));
  std::thread server = replica_serve_in_background(replica, listener);

  std::uint64_t next_seed = 1000;
  auto faulty_link = [&](std::uint64_t seed, std::uint64_t cut_after)
      -> Result<std::unique_ptr<Transport>> {
    PRINS_ASSIGN_OR_RETURN(std::unique_ptr<Transport> raw,
                           network.connect("replica"));
    FaultConfig faults;
    faults.drop_p = drop_p;
    faults.corrupt_p = corrupt_p;
    faults.disconnect_after = cut_after;
    faults.seed = seed;
    return std::unique_ptr<Transport>(
        std::make_unique<FaultyTransport>(std::move(raw), faults));
  };

  EngineConfig config;
  config.policy = ReplicationPolicy::kPrins;
  config.keep_trap_log = true;
  config.coalesce_writes = true;
  config.pipeline_depth = 8;
  config.retry.max_attempts = 10;
  config.retry.base_backoff = std::chrono::milliseconds(1);
  config.retry.max_backoff = std::chrono::milliseconds(10);
  config.retry.op_timeout = std::chrono::milliseconds(5);
  config.reconnect = [&](std::size_t) {
    return faulty_link(next_seed++, /*cut_after=*/0);
  };

  auto primary = std::make_shared<MemDisk>(kBlocks, kBs);
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  {
    auto link = faulty_link(7, disconnect_after);
    if (!link.is_ok()) return out;
    engine->add_replica(std::move(*link));
  }

  Rng rng(42);
  Bytes block(kBs);
  std::vector<double> lat_us;
  lat_us.reserve(writes);
  const auto start = bench::Clock::now();
  bool writes_ok = true;
  for (std::uint64_t i = 0; i < writes; ++i) {
    rng.fill(block);
    const auto begin = bench::Clock::now();
    writes_ok &= engine->write(rng.next_below(kBlocks), block).is_ok();
    lat_us.push_back(bench::to_us(bench::Clock::now() - begin));
  }
  writes_ok &= engine->drain().is_ok();
  const double elapsed = bench::seconds_since(start);

  const EngineMetrics metrics = engine->metrics();
  out.writes_per_sec = elapsed > 0 ? static_cast<double>(writes) / elapsed : 0;
  out.lat = bench::summarize_latencies(lat_us);
  out.retries = metrics.retries;
  out.reconnects = metrics.reconnects;
  out.auto_resyncs = metrics.auto_resyncs;
  out.converged = devices_match(*primary, *disk);
  out.ok = writes_ok;

  engine.reset();
  listener->close();
  server.join();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t writes = 4000;
  if (argc > 1) {
    const auto v = std::strtoull(argv[1], nullptr, 10);
    if (v > 0) writes = v;
  }

  std::printf("=== Throughput vs message loss (1 replica, PRINS, %llu "
              "writes, 4 KB blocks, pipeline 8, coalescing on) ===\n\n",
              static_cast<unsigned long long>(writes));
  std::printf("%-9s %-11s %12s %9s %9s %10s %10s %6s\n", "drop_p",
              "corrupt_p", "writes/s", "p50 us", "p99 us", "retries",
              "converged", "ok");
  const double drops[] = {0.0, 0.002, 0.005, 0.01, 0.02};
  for (const double drop : drops) {
    const double corrupt = drop / 2;
    const RunResult r = run(writes, drop, corrupt, /*disconnect_after=*/0);
    std::printf("%-9.3f %-11.4f %12.0f %9.1f %9.1f %10llu %10s %6s\n", drop,
                corrupt, r.writes_per_sec, r.lat.p50_us, r.lat.p99_us,
                static_cast<unsigned long long>(r.retries),
                r.converged ? "yes" : "NO", r.ok ? "yes" : "NO");
  }
  std::printf("\neach dropped message costs one op_timeout plus a "
              "backed-off retransmit of the un-acked window; the replica's "
              "sequence dedup absorbs the duplicates.\n\n");

  std::printf("=== Hard disconnect mid-run, healed by the reconnect "
              "factory ===\n\n");
  std::printf("%-16s %12s %9s %10s %12s %12s %10s %6s\n", "cut after msg",
              "writes/s", "p99 us", "retries", "reconnects", "auto_resyncs",
              "converged", "ok");
  for (const std::uint64_t cut : {writes / 8, writes / 2}) {
    const RunResult r = run(writes, 0.002, 0.001, cut);
    std::printf("%-16llu %12.0f %9.1f %10llu %12llu %12llu %10s %6s\n",
                static_cast<unsigned long long>(cut), r.writes_per_sec,
                r.lat.p99_us, static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.reconnects),
                static_cast<unsigned long long>(r.auto_resyncs),
                r.converged ? "yes" : "NO", r.ok ? "yes" : "NO");
  }
  std::printf("\nthe cut link reconnects transparently (in-flight window "
              "replayed, dedup absorbs overlap); if retries exhaust first "
              "the engine degrades, then self-heals by folding the trap "
              "log over the outage.\n\n");
  return 0;
}
