// Throughput of the dispatched byte kernels (GB/s per implementation per
// size), the arithmetic floor of the PRINS hot path: every replicated
// write runs xor_to_and_count once on the primary and xor_into once per
// replica, and the zero-RLE codec runs skip_zeros over every delta.
//
// Every tier is cross-checked against the scalar reference before timing;
// any mismatch exits non-zero, so this binary doubles as a smoke test
// (registered with ctest via --quick).  Results land in
// BENCH_kernels.json next to the working directory.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "parity/kernels.h"

namespace {

using namespace prins;
using kernels::Ops;

constexpr std::size_t kSizes[] = {64, 512, 4096, 8192, 65536};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Time `body` (which touches `bytes_per_call` bytes) long enough for a
/// stable rate; returns GB/s. Takes the fastest of three samples so a
/// scheduler preemption mid-sample doesn't masquerade as a slow kernel.
template <typename Fn>
double rate_gbps(std::size_t bytes_per_call, double min_sec, Fn&& body) {
  // Warm up and pick an iteration count that runs ~min_sec.
  body();
  std::size_t iters = 1;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) body();
    const double sec = seconds_since(start);
    if (sec >= min_sec) break;
    iters = sec > 0 ? iters * (static_cast<std::size_t>(min_sec / sec) + 2)
                    : iters * 16;
  }
  double best_sec = -1;
  for (int sample = 0; sample < 3; ++sample) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) body();
    const double sec = seconds_since(start);
    if (best_sec < 0 || sec < best_sec) best_sec = sec;
  }
  return static_cast<double>(bytes_per_call) * static_cast<double>(iters) /
         best_sec / 1e9;
}

/// Verify one tier against the scalar reference across sizes 0..257 and
/// odd alignments; returns false (and prints) on any divergence.
bool cross_check(const Ops& ops, const Ops& ref) {
  Rng rng(7);
  Bytes a(512 + 3), b(512 + 3);
  rng.fill(a);
  rng.fill(b);
  // Sprinkle zero runs so count/skip paths see both kinds of lanes.
  for (std::size_t i = 96; i < 160 && i < a.size(); ++i) a[i] = b[i];
  for (std::size_t n = 0; n <= 257; ++n) {
    for (const std::size_t off : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}}) {
      const Byte* pa = a.data() + off;
      const Byte* pb = b.data() + off;
      Bytes got(n), want(n);
      ops.xor_to(got.data(), pa, pb, n);
      ref.xor_to(want.data(), pa, pb, n);
      if (got != want) {
        std::fprintf(stderr, "FAIL %s xor_to n=%zu off=%zu\n", ops.name, n,
                     off);
        return false;
      }
      Bytes acc_got(want), acc_want(want);
      ops.xor_into(acc_got.data(), pb, n);
      ref.xor_into(acc_want.data(), pb, n);
      if (acc_got != acc_want) {
        std::fprintf(stderr, "FAIL %s xor_into n=%zu off=%zu\n", ops.name, n,
                     off);
        return false;
      }
      if (ops.count_nonzero(pa, n) != ref.count_nonzero(pa, n)) {
        std::fprintf(stderr, "FAIL %s count_nonzero n=%zu off=%zu\n",
                     ops.name, n, off);
        return false;
      }
      Bytes fused_got(n), fused_want(n);
      const std::size_t cg = ops.xor_to_and_count(fused_got.data(), pa, pb, n);
      const std::size_t cw = ref.xor_to_and_count(fused_want.data(), pa, pb, n);
      if (fused_got != fused_want || cg != cw) {
        std::fprintf(stderr, "FAIL %s xor_to_and_count n=%zu off=%zu\n",
                     ops.name, n, off);
        return false;
      }
      for (const std::size_t pos : {std::size_t{0}, n / 2, n}) {
        if (ops.skip_zeros(pa, n, pos) != ref.skip_zeros(pa, n, pos)) {
          std::fprintf(stderr, "FAIL %s skip_zeros n=%zu pos=%zu off=%zu\n",
                       ops.name, n, pos, off);
          return false;
        }
      }
    }
  }
  return true;
}

struct Row {
  std::string impl;
  std::string kernel;
  std::size_t size;
  double gbps;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const double min_sec = quick ? 0.002 : 0.05;

  const Ops& scalar = kernels::scalar_ops();
  const std::vector<const Ops*> tiers = kernels::available_ops();

  std::printf("=== PRINS byte kernels: GB/s per implementation "
              "(dispatch picks \"%s\") ===\n\n",
              kernels::active_ops().name);

  for (const Ops* ops : tiers) {
    if (!cross_check(*ops, scalar)) return 1;
  }
  std::printf("cross-check vs scalar: all %zu implementations "
              "bit-identical\n\n",
              tiers.size());

  std::vector<Row> rows;
  Rng rng(11);
  Bytes a(kSizes[std::size(kSizes) - 1]), b(a.size()), out(a.size());
  rng.fill(a);
  rng.fill(b);
  // ~90% zero bytes in `a`, like a real partial-write parity delta — the
  // shape count_nonzero and skip_zeros actually see.
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i % 10 != 0) a[i] = Byte{0};
  }

  std::printf("%-8s %-18s %10s %10s\n", "impl", "kernel", "size", "GB/s");
  for (const Ops* ops : tiers) {
    for (const std::size_t n : kSizes) {
      struct KernelCase {
        const char* name;
        double gbps;
      };
      const KernelCase cases[] = {
          {"xor_to", rate_gbps(n, min_sec,
                               [&] { ops->xor_to(out.data(), a.data(),
                                                 b.data(), n); })},
          {"xor_into", rate_gbps(n, min_sec,
                                 [&] { ops->xor_into(out.data(), b.data(),
                                                     n); })},
          {"count_nonzero",
           rate_gbps(n, min_sec, [&] { (void)ops->count_nonzero(a.data(),
                                                                n); })},
          {"xor_to_and_count",
           rate_gbps(n, min_sec,
                     [&] { (void)ops->xor_to_and_count(out.data(), a.data(),
                                                       b.data(), n); })},
          {"skip_zeros",
           rate_gbps(n, min_sec, [&] { (void)ops->skip_zeros(a.data(), n,
                                                             0); })},
      };
      for (const KernelCase& c : cases) {
        rows.push_back(Row{ops->name, c.name, n, c.gbps});
        std::printf("%-8s %-18s %10zu %10.2f\n", ops->name, c.name, n,
                    c.gbps);
      }
    }
    std::printf("\n");
  }

  // Headline: dispatched xor_to vs scalar on an 8 KiB block.
  double scalar_8k = 0, active_8k = 0;
  for (const Row& r : rows) {
    if (r.kernel == "xor_to" && r.size == 8192) {
      if (r.impl == scalar.name) scalar_8k = r.gbps;
      if (r.impl == kernels::active_ops().name) active_8k = r.gbps;
    }
  }
  const double speedup = scalar_8k > 0 ? active_8k / scalar_8k : 0.0;
  std::printf("speedup_xor_to_8192: %.2fx (%s %.2f GB/s vs scalar %.2f "
              "GB/s)\n",
              speedup, kernels::active_ops().name, active_8k, scalar_8k);

  FILE* json = std::fopen("BENCH_kernels.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"active\": \"%s\",\n",
                 kernels::active_ops().name);
    std::fprintf(json, "  \"speedup_xor_to_8192\": %.3f,\n", speedup);
    std::fprintf(json, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(json,
                   "    {\"impl\": \"%s\", \"kernel\": \"%s\", "
                   "\"size\": %zu, \"gbps\": %.3f}%s\n",
                   rows[i].impl.c_str(), rows[i].kernel.c_str(),
                   rows[i].size, rows[i].gbps,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_kernels.json\n");
  }
  return 0;
}
