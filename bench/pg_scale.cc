// PG-sharded cluster scaling — aggregate write throughput vs primary count.
//
// The cluster layer's pitch is that hashing the LBA space into placement
// groups turns N nodes into N concurrent primaries, so aggregate client
// write throughput scales with the node count instead of funneling through
// one engine.  This bench grounds that: one volume striped over P in-process
// nodes (P = 1, 2, 4), each node's backing store throttled to a serial
// ~150 us service time per block op (a single spindle / NVMe queue-depth-1
// model — without a per-device cost, an in-memory cluster measures only
// framing overhead and every cell saturates the same CPU).  A fixed pool of
// client workers drives random single-block writes through a PG-aware
// ClusterRouter over pooled wire connections; each cell reports aggregate
// writes/s and p50/p99 client latency, and the JSON artifact carries the
// speedups the CI gate checks (>= 1.7x at 2 primaries, >= 3x at 4).
//
// The scaling cells run mirrorless (R = 0): with R >= 1 every node's disk
// carries its primary load *plus* inbound replica applies, so the per-disk
// budget is shared and the curve flattens — that cost is real, so one R = 1
// info cell is included, but the gate measures primary fan-out, not
// replication overhead.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "block/block_device.h"
#include "block/mem_disk.h"
#include "cluster/cluster_router.h"
#include "cluster/pg_membership.h"
#include "common/rng.h"

namespace {

using namespace prins;
using namespace prins::cluster;
namespace bench = prins::bench;

constexpr std::uint32_t kBlockSize = 4096;
constexpr std::uint64_t kNumBlocks = 2048;
constexpr std::uint32_t kPgCount = 256;
constexpr unsigned kWorkers = 12;

/// A serial-service-time disk: one op at a time, ~`service` each.  The
/// mutex is the model, not an implementation detail — it is what makes a
/// node's device a finite resource that more primaries can multiply.
class ThrottledDisk final : public BlockDevice {
 public:
  ThrottledDisk(std::shared_ptr<BlockDevice> inner,
                std::chrono::microseconds service)
      : inner_(std::move(inner)), service_(service) {}

  std::uint32_t block_size() const override { return inner_->block_size(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status read(Lba lba, MutByteSpan out) override {
    std::lock_guard lock(mutex_);
    std::this_thread::sleep_for(service_);
    return inner_->read(lba, out);
  }
  Status write(Lba lba, ByteSpan data) override {
    std::lock_guard lock(mutex_);
    std::this_thread::sleep_for(service_);
    return inner_->write(lba, data);
  }
  Status flush() override { return inner_->flush(); }
  std::string describe() const override {
    return "throttled(" + inner_->describe() + ")";
  }

 private:
  const std::shared_ptr<BlockDevice> inner_;
  const std::chrono::microseconds service_;
  std::mutex mutex_;
};

struct CellResult {
  unsigned primaries = 0;
  std::uint32_t mirrors = 0;
  double seconds = 0;
  std::uint64_t writes = 0;
  double writes_per_sec = 0;
  bench::LatencySummary lat;
  bool ok = false;
};

CellResult run_cell(unsigned primaries, std::uint32_t mirrors,
                    double seconds) {
  CellResult out;
  out.primaries = primaries;
  out.mirrors = mirrors;

  MembershipConfig mc;
  mc.map.pg_count = kPgCount;
  mc.map.mirrors = mirrors;
  mc.client_pool = 6;
  PgMembership membership(
      [](const std::string&) -> std::shared_ptr<BlockDevice> {
        return std::make_shared<ThrottledDisk>(
            std::make_shared<MemDisk>(kNumBlocks, kBlockSize),
            std::chrono::microseconds(150));
      },
      mc);
  for (unsigned i = 0; i < primaries; ++i) {
    if (!membership.add_node("n" + std::to_string(i + 1)).is_ok()) return out;
  }
  if (!membership.start().is_ok()) return out;
  auto router = membership.make_router(/*wire=*/true);

  std::atomic<bool> stop{false};
  std::atomic<bool> all_ok{true};
  std::vector<std::uint64_t> counts(kWorkers, 0);
  std::vector<std::vector<double>> lats(kWorkers);
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(0x9a0b5c6d + 977u * w);
      Bytes block(kBlockSize);
      rng.fill(block);
      std::vector<double>& lat = lats[w];
      while (!stop.load(std::memory_order_relaxed)) {
        const Lba lba = rng.next_below(kNumBlocks);
        std::memcpy(block.data(), &lba, sizeof(lba));
        const auto begin = bench::Clock::now();
        if (!router->write(lba, block).is_ok()) {
          all_ok.store(false, std::memory_order_relaxed);
          break;
        }
        lat.push_back(bench::to_us(bench::Clock::now() - begin));
        ++counts[w];
      }
    });
  }

  const auto start = bench::Clock::now();
  while (bench::seconds_since(start) < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& t : workers) t.join();
  out.seconds = bench::seconds_since(start);

  std::vector<double> all_lats;
  for (unsigned w = 0; w < kWorkers; ++w) {
    out.writes += counts[w];
    all_lats.insert(all_lats.end(), lats[w].begin(), lats[w].end());
  }
  out.writes_per_sec =
      out.seconds > 0 ? static_cast<double>(out.writes) / out.seconds : 0;
  out.lat = bench::summarize_latencies(all_lats);

  // Sanity: the router must actually have spread the load — with 256 PGs
  // over <= 4 nodes, every node serves some.
  std::uint64_t routed = 0;
  for (const std::uint64_t n : router->pg_op_counts()) routed += n;
  out.ok = all_ok.load() && routed == out.writes;
  membership.stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") seconds = 0.35;
  }

  std::printf("=== PG-sharded write scaling: %u-PG map, %u workers, "
              "random 4 KB writes, per-node disk ~150 us/op ===\n\n",
              kPgCount, kWorkers);
  std::printf("%-10s %-8s %12s %10s %10s %10s %6s\n", "primaries", "mirrors",
              "writes/s", "p50 us", "p99 us", "speedup", "ok");

  std::vector<CellResult> cells;
  double base_wps = 0;
  bool all_ok = true;
  for (const unsigned p : {1u, 2u, 4u}) {
    CellResult r = run_cell(p, /*mirrors=*/0, seconds);
    if (p == 1) base_wps = r.writes_per_sec;
    const double speedup = base_wps > 0 ? r.writes_per_sec / base_wps : 0;
    std::printf("%-10u %-8u %12.0f %10.0f %10.0f %9.2fx %6s\n", p, r.mirrors,
                r.writes_per_sec, r.lat.p50_us, r.lat.p99_us, speedup,
                r.ok ? "yes" : "NO");
    all_ok = all_ok && r.ok;
    cells.push_back(r);
  }
  // Info row: the same 4-primary cell with one mirror per PG — every disk
  // now also absorbs replica applies, so per-node headroom halves.
  {
    CellResult r = run_cell(4, /*mirrors=*/1, seconds);
    const double speedup = base_wps > 0 ? r.writes_per_sec / base_wps : 0;
    std::printf("%-10u %-8u %12.0f %10.0f %10.0f %9.2fx %6s\n", 4u, r.mirrors,
                r.writes_per_sec, r.lat.p50_us, r.lat.p99_us, speedup,
                r.ok ? "yes" : "NO");
    all_ok = all_ok && r.ok;
    cells.push_back(r);
  }

  const double speedup2 =
      base_wps > 0 ? cells[1].writes_per_sec / base_wps : 0;
  const double speedup4 =
      base_wps > 0 ? cells[2].writes_per_sec / base_wps : 0;
  std::printf("\nhashed PGs turn every added node into an added primary: "
              "2 primaries %.2fx, 4 primaries %.2fx aggregate writes/s "
              "(gate: >= 1.7x and >= 3x).\n\n",
              speedup2, speedup4);

  std::FILE* json = std::fopen("BENCH_pg_scale.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"pg_scale\",\n"
                 "  \"block_size\": %u,\n"
                 "  \"num_blocks\": %llu,\n"
                 "  \"pg_count\": %u,\n"
                 "  \"workers\": %u,\n"
                 "  \"disk_service_us\": 150,\n"
                 "  \"speedup_2_primaries\": %.3f,\n"
                 "  \"speedup_4_primaries\": %.3f,\n"
                 "  \"cells\": [\n",
                 kBlockSize, static_cast<unsigned long long>(kNumBlocks),
                 kPgCount, kWorkers, speedup2, speedup4);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellResult& r = cells[i];
      std::fprintf(json,
                   "    {\"primaries\": %u, \"mirrors\": %u, "
                   "\"seconds\": %.3f, \"writes\": %llu, "
                   "\"writes_per_sec\": %.1f, \"p50_us\": %.1f, "
                   "\"p99_us\": %.1f, \"ok\": %s}%s\n",
                   r.primaries, r.mirrors, r.seconds,
                   static_cast<unsigned long long>(r.writes),
                   r.writes_per_sec, r.lat.p50_us, r.lat.p99_us,
                   r.ok ? "true" : "false",
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
  }

  if (!all_ok) {
    std::fprintf(stderr, "pg_scale: a cell reported failed I/O\n");
    return 1;
  }
  return 0;
}
