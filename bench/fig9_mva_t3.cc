// Figure 9 — response time vs population, T3 lines, 2 routers, 8 KB.
//
// Paper result: absolute times drop on the faster line, but the two
// traditional techniques still climb with population while PRINS stays
// constant and lowest.
#include "bench/mva_common.h"

int main(int argc, char** argv) {
  const std::uint64_t transactions =
      prins::bench::transactions_from_argv(argc, argv, 300);
  return prins::bench::run_mva_figure(
      "Figure 9: response time vs population over T3", prins::kT3,
      transactions);
}
