// Figure 8 — response time vs population, T1 lines, 2 routers, 8 KB.
//
// Paper result: traditional replication's response time rises rapidly
// with population (saturating the T1 line), compressed also climbs, PRINS
// stays nearly flat (~hundreds of bytes per write cannot saturate a T1
// at 10 writes/s/node).
#include "bench/mva_common.h"

int main(int argc, char** argv) {
  const std::uint64_t transactions =
      prins::bench::transactions_from_argv(argc, argv, 300);
  return prins::bench::run_mva_figure(
      "Figure 8: response time vs population over T1", prins::kT1,
      transactions);
}
