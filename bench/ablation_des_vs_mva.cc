// Ablation — how trustworthy is the paper's analytic model?
//
// The paper solves its closed network with exact MVA (product-form:
// exponential service).  Real packet service on a fixed-bandwidth line is
// near-deterministic.  This bench runs a discrete-event simulation of the
// same topology under both service distributions and prints all three
// response-time curves for the traditional-replication service time at
// 8 KB over T1 — quantifying the modelling error the paper accepts.
#include <cstdio>
#include <vector>

#include "queueing/des.h"
#include "queueing/mva.h"
#include "queueing/wan.h"

int main() {
  using namespace prins;
  const double service = router_service_time_sec(8192 + 47, kT1);
  const double think = 0.1;
  const std::vector<double> routers{service, service};

  std::printf("=== Ablation: MVA vs discrete-event simulation ===\n");
  std::printf("2 routers, S=%.4f s each (traditional 8 KB over T1), "
              "think 0.1 s\n\n",
              service);
  std::printf("%-12s %14s %18s %18s\n", "population", "MVA RespT",
              "DES RespT (exp)", "DES RespT (det)");

  const auto mva = solve_mva_curve(routers, think, 100);
  for (unsigned n : {1u, 10u, 20u, 40u, 60u, 80u, 100u}) {
    DesConfig config;
    config.population = n;
    config.think_time_mean_sec = think;
    config.service_times_sec = routers;
    config.requests = 120000;
    config.seed = 1000 + n;
    const auto exp_result = simulate_closed_network(config);
    config.exponential_service = false;
    const auto det_result = simulate_closed_network(config);
    std::printf("%-12u %14.4f %18.4f %18.4f\n", n,
                mva[n - 1].response_time_sec,
                exp_result.mean_response_time_sec,
                det_result.mean_response_time_sec);
  }
  std::printf("\ntakeaway: with exponential service the DES matches exact "
              "MVA within noise;\nnear-deterministic packet service "
              "queues *less*, so the paper's analytic\ncurves are a "
              "conservative upper bound on response time.\n\n");
  return 0;
}
