// Overhead of the IntegrityDisk checksum layer on the block I/O hot path:
// MB/s for reads and writes through a bare MemDisk, through an in-memory
// IntegrityDisk, and through a sidecar-persisted IntegrityDisk (batched
// CRC-page write-back, fsync disabled only by the OS page cache), per
// block size.  The interesting number is the relative slowdown: the CRC
// itself is one crc32c pass per block, so the layer should cost a few
// percent at the paper's 8 KiB blocks, not multiples.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "block/integrity_disk.h"
#include "block/mem_disk.h"
#include "common/rng.h"

namespace {

using namespace prins;

constexpr std::uint32_t kSizes[] = {512, 4096, 8192, 65536};
constexpr std::uint64_t kBlocks = 1024;
constexpr int kRounds = 64;  // full-device sweeps per measurement

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Rates {
  double write_mbps = 0;
  double read_mbps = 0;
};

Rates measure(BlockDevice& disk, std::uint32_t bs) {
  Rng rng(1);
  Bytes block(bs);
  rng.fill(block);
  Rates rates;

  auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    for (Lba lba = 0; lba < kBlocks; ++lba) {
      if (!disk.write(lba, block).is_ok()) std::abort();
    }
  }
  double sec = seconds_since(start);
  rates.write_mbps =
      static_cast<double>(bs) * kBlocks * kRounds / sec / 1e6;

  start = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    for (Lba lba = 0; lba < kBlocks; ++lba) {
      if (!disk.read(lba, block).is_ok()) std::abort();
    }
  }
  sec = seconds_since(start);
  rates.read_mbps = static_cast<double>(bs) * kBlocks * kRounds / sec / 1e6;
  return rates;
}

std::string sidecar_path() {
  return (std::filesystem::temp_directory_path() /
          "prins_bench_integrity.crc")
      .string();
}

}  // namespace

int main() {
  std::printf("# IntegrityDisk overhead (MemDisk substrate, %llu blocks, "
              "%d sweeps)\n",
              static_cast<unsigned long long>(kBlocks), kRounds);
  std::printf("%-8s %-10s %12s %12s %9s %9s\n", "bs", "layer", "write MB/s",
              "read MB/s", "w.ovh", "r.ovh");
  for (std::uint32_t bs : kSizes) {
    auto bare = std::make_shared<MemDisk>(kBlocks, bs);
    const Rates base = measure(*bare, bs);
    std::printf("%-8u %-10s %12.0f %12.0f %9s %9s\n", bs, "bare",
                base.write_mbps, base.read_mbps, "-", "-");

    {
      auto inner = std::make_shared<MemDisk>(kBlocks, bs);
      auto checked = IntegrityDisk::open(inner);
      if (!checked.is_ok()) std::abort();
      const Rates r = measure(**checked, bs);
      std::printf("%-8u %-10s %12.0f %12.0f %8.1f%% %8.1f%%\n", bs, "crc-mem",
                  r.write_mbps, r.read_mbps,
                  100.0 * (base.write_mbps / r.write_mbps - 1.0),
                  100.0 * (base.read_mbps / r.read_mbps - 1.0));
    }
    {
      auto inner = std::make_shared<MemDisk>(kBlocks, bs);
      IntegrityConfig config;
      config.sidecar_path = sidecar_path();
      std::remove(config.sidecar_path.c_str());
      auto checked = IntegrityDisk::open(inner, config);
      if (!checked.is_ok()) std::abort();
      const Rates r = measure(**checked, bs);
      std::printf("%-8u %-10s %12.0f %12.0f %8.1f%% %8.1f%%\n", bs,
                  "crc-disk", r.write_mbps, r.read_mbps,
                  100.0 * (base.write_mbps / r.write_mbps - 1.0),
                  100.0 * (base.read_mbps / r.read_mbps - 1.0));
      std::remove(config.sidecar_path.c_str());
    }
  }
  return 0;
}
