// Figure 6 — TPC-W on MySQL (Tomcat front end): replication traffic.
//
// Paper setup: 30 emulated browsers, 10,000 items.  Paper result: about
// two orders of magnitude saving; at 8 KB ~55 MB traditional vs ~6 MB
// PRINS over the run; at 64 KB ~183 MB vs ~6 MB — PRINS traffic is
// independent of block size because it ships only the changed bits.
#include "bench/fig_common.h"
#include "workload/tpcw.h"

int main(int argc, char** argv) {
  using namespace prins;
  bench::FigureSpec spec;
  spec.title = "Figure 6: TPC-W / MySQL profile — replication traffic";
  spec.paper_expectation =
      "8KB: ~9x vs traditional (55MB -> 6MB); 64KB: ~30x (183MB -> 6MB); "
      "PRINS flat in block size";
  spec.transactions = bench::transactions_from_argv(argc, argv, 4000);

  WorkloadFactory factory = [] {
    TpcwConfig config;
    config.items = 10000;
    config.customers = 1000;
    config.emulated_browsers = 30;
    config.order_capacity = 20000;
    config.seed = 20060106;
    return std::make_unique<Tpcw>(config);
  };
  return bench::run_figure(spec, factory);
}
