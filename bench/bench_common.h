// Shared measurement helpers for the bench/ binaries.
//
// Every bench wants the same three things: a steady clock, microsecond
// round-trip samples, and order-statistic percentiles over those samples.
// Keeping one implementation here means conn_scale, node_threads, and
// read_scale agree on what "p99" means (nth_element order statistic, not
// an interpolated or bucketed estimate) and a fix lands everywhere at
// once.
#pragma once

#include <algorithm>
#include <chrono>
#include <vector>

namespace prins::bench {

using Clock = std::chrono::steady_clock;

inline double to_us(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

inline double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Order-statistic quantile: the element at rank floor(q * n), found with
/// nth_element (O(n), partially reorders `v` — take percentiles from
/// smallest q to largest on the same vector, or don't care about order,
/// which every current caller satisfies).  q in [0, 1]; empty input -> 0.
inline double quantile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  const std::size_t k =
      std::min(v.size() - 1,
               static_cast<std::size_t>(q * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[k];
}

/// The percentile pair every bench table prints.
struct LatencySummary {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

inline LatencySummary summarize_latencies(std::vector<double>& lat_us) {
  LatencySummary s;
  s.p50_us = quantile(lat_us, 0.50);
  s.p99_us = quantile(lat_us, 0.99);
  return s;
}

}  // namespace prins::bench
