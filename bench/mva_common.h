// Shared scaffolding for the Figures 8-9 MVA benches.
//
// Measures the per-write replication message size of each policy with a
// short TPC-C run at 8 KB blocks (the paper's configuration), derives the
// per-router service time from the paper's WAN model, and solves the
// closed queueing network of Figure 3 for populations 1..100 with two
// routers and a 0.1 s think time (the paper's measured TPC-C write
// inter-arrival of ~10.22 writes/s per node).
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench/fig_common.h"
#include "queueing/mva.h"
#include "queueing/wan.h"
#include "sim/experiment.h"
#include "workload/tpcc.h"

namespace prins::bench {

constexpr double kThinkTimeSec = 0.1;  // ~10.22 writes/s measured (§3.3)
constexpr int kRouters = 2;            // "going through 2 routers"

/// Mean replication *message* bytes per block write per policy, measured
/// at 8 KB blocks on the Oracle-profile TPC-C.
inline std::map<ReplicationPolicy, double> measure_message_sizes(
    std::uint64_t transactions) {
  WorkloadFactory factory = [] {
    TpccConfig config;
    config.profile = oracle_profile();
    config.warehouses = 5;
    config.customers_per_district = 150;
    config.items = 1000;
    config.order_capacity = 30000;
    config.seed = 20060108;
    return std::make_unique<Tpcc>(config);
  };
  std::map<ReplicationPolicy, double> sizes;
  for (ReplicationPolicy policy : {ReplicationPolicy::kTraditional,
                                   ReplicationPolicy::kTraditionalCompressed,
                                   ReplicationPolicy::kPrins}) {
    PolicyRunConfig config;
    config.policy = policy;
    config.block_size = 8192;
    config.transactions = transactions;
    auto result = run_policy(factory, config);
    if (!result.is_ok() || result->sent.messages == 0) {
      std::fprintf(stderr, "measurement failed for %s: %s\n",
                   std::string(policy_name(policy)).c_str(),
                   result.status().to_string().c_str());
      continue;
    }
    sizes[policy] = static_cast<double>(result->sent.payload_bytes) /
                    static_cast<double>(result->sent.messages);
  }
  return sizes;
}

/// Print the response-time-vs-population curves of Figure 8/9.
inline int run_mva_figure(const char* title, const WanLine& line,
                          std::uint64_t transactions) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "model: closed network, %d routers in series, think time %.1f s, "
      "block size 8 KB, %s line\n",
      kRouters, kThinkTimeSec, std::string(line.name).c_str());
  std::printf("paper: traditional (and compressed) response time climbs "
              "steeply with population; PRINS stays flat\n\n");

  const auto sizes = measure_message_sizes(transactions);
  if (sizes.size() != 3) return 1;
  std::printf("measured mean message bytes per replicated write:\n");
  for (const auto& [policy, bytes] : sizes) {
    std::printf("  %-15s %10.1f  (router service time %.4f s)\n",
                std::string(policy_name(policy)).c_str(), bytes,
                router_service_time_sec(static_cast<std::uint64_t>(bytes),
                                        line));
  }

  std::map<ReplicationPolicy, std::vector<MvaResult>> curves;
  for (const auto& [policy, bytes] : sizes) {
    const double s = router_service_time_sec(
        static_cast<std::uint64_t>(bytes), line);
    curves[policy] =
        solve_mva_curve(std::vector<double>(kRouters, s), kThinkTimeSec, 100);
  }

  std::printf("\n%-12s %18s %18s %18s\n", "population", "RespT traditional",
              "RespT compressed", "RespT PRINS");
  for (unsigned n : {1u, 10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u, 100u}) {
    std::printf("%-12u %18.4f %18.4f %18.4f\n", n,
                curves[ReplicationPolicy::kTraditional][n - 1]
                    .response_time_sec,
                curves[ReplicationPolicy::kTraditionalCompressed][n - 1]
                    .response_time_sec,
                curves[ReplicationPolicy::kPrins][n - 1].response_time_sec);
  }

  const double trad100 =
      curves[ReplicationPolicy::kTraditional].back().response_time_sec;
  const double prins100 =
      curves[ReplicationPolicy::kPrins].back().response_time_sec;
  std::printf("\nat population 100: PRINS response time is %.1fx lower than "
              "traditional\n\n",
              trad100 / prins100);
  return 0;
}

}  // namespace prins::bench
