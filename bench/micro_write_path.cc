// Submit-side throughput and allocation cost of the replicated write path.
//
// Two engine configurations face off at 1/2/4/8 concurrent writers on
// disjoint LBA stripes:
//
//   baseline  write_shards=1, pool_buffers=false  (the pre-shard pipeline:
//             one global submit lock, fresh heap buffers per write)
//   sharded   write_shards=8, pool_buffers=true   (LBA-striped locks +
//             freelist buffers + scatter-gather framing)
//
// For each cell we report writes/s and — via a global operator new override
// with thread-local counters — heap allocations and bytes per write *on the
// submitting threads*, which is the hot path the sharded pipeline is meant
// to make allocation-free.  Policy is kPrinsRle (the PRINS parity delta
// with the zero-RLE codec): its encode path is allocation-free, so the
// steady-state floor is visible; kPrins's LZ stage allocates by design.
//
// Results land in BENCH_write_path.json; --quick shrinks the write counts
// so the binary doubles as a ctest smoke test.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "prins/engine.h"
#include "prins/replica.h"

// ---- allocation accounting -------------------------------------------------
// Per-thread counters; the writer threads snapshot them around the timed
// loop, so sender/replica-thread allocations don't pollute the hot-path
// number.

namespace {
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_alloc_bytes = 0;
}  // namespace

void* operator new(std::size_t size) {
  t_allocs += 1;
  t_alloc_bytes += size;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  t_allocs += 1;
  t_alloc_bytes += size;
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// ---- benchmark -------------------------------------------------------------

namespace {

using namespace prins;

constexpr std::uint32_t kBs = 4096;
constexpr std::uint64_t kStripeBlocks = 512;  // disjoint LBAs per writer

struct Cell {
  const char* config;
  int threads;
  double writes_per_sec = 0;
  double allocs_per_write = 0;
  double alloc_bytes_per_write = 0;
};

/// One rig run: `threads` writers, each `writes` blocks over its own LBA
/// stripe.  Returns the filled cell.
Cell run_cell(const char* name, int threads, std::uint64_t writes,
              std::size_t shards, bool pool) {
  EngineConfig config;
  config.policy = ReplicationPolicy::kPrinsRle;
  config.write_shards = shards;
  config.pool_buffers = pool;
  // A bounded outbox plus a streaming ack window is the realistic steady
  // state: producers feel backpressure, the sender keeps the link busy, and
  // in-flight frames stay below the pool's freelist bound so they recycle.
  config.queue_capacity = 64;
  config.pipeline_depth = 32;

  const std::uint64_t blocks = kStripeBlocks * static_cast<std::uint64_t>(
                                                   threads > 8 ? threads : 8);
  auto primary = std::make_shared<MemDisk>(blocks, kBs);
  auto replica_disk = std::make_shared<MemDisk>(blocks, kBs);
  auto replica = std::make_shared<ReplicaEngine>(replica_disk);
  auto engine = std::make_unique<PrinsEngine>(primary, config);
  auto [primary_end, replica_end] = make_inproc_pair(config.queue_capacity);
  engine->add_replica(std::move(primary_end));
  std::thread server(
      [replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
        (void)replica->serve(*t);
      });

  // Sparse writes: each block differs from its predecessor in one 256-byte
  // region, the parity-delta shape the RLE codec is built for.
  Rng seed_rng(42);
  Bytes base(kBs);
  seed_rng.fill(base);

  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> total_allocs{0};
  std::atomic<std::uint64_t> total_alloc_bytes{0};
  std::vector<std::thread> writers;
  writers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(100 + static_cast<std::uint64_t>(t));
      Bytes block = base;
      const Lba stripe = static_cast<Lba>(t) * kStripeBlocks;
      // Warm up: fill the pools and settle the link before counting.
      for (std::uint64_t i = 0; i < 32; ++i) {
        (void)engine->write(stripe + i % kStripeBlocks, block);
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const std::uint64_t allocs_before = t_allocs;
      const std::uint64_t bytes_before = t_alloc_bytes;
      for (std::uint64_t i = 0; i < writes; ++i) {
        const std::size_t off = (rng.next_below(kBs / 256)) * 256;
        for (std::size_t j = 0; j < 256; ++j) {
          block[off + j] = static_cast<Byte>(rng.next_u64());
        }
        (void)engine->write(stripe + i % kStripeBlocks, block);
      }
      total_allocs.fetch_add(t_allocs - allocs_before);
      total_alloc_bytes.fetch_add(t_alloc_bytes - bytes_before);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& w : writers) w.join();
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  (void)engine->drain();
  engine.reset();  // closes the link; the serve loop exits
  server.join();

  const double total_writes =
      static_cast<double>(writes) * static_cast<double>(threads);
  Cell cell{name, threads};
  cell.writes_per_sec = total_writes / sec;
  cell.allocs_per_write =
      static_cast<double>(total_allocs.load()) / total_writes;
  cell.alloc_bytes_per_write =
      static_cast<double>(total_alloc_bytes.load()) / total_writes;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::uint64_t writes = quick ? 256 : 8192;
  const int thread_counts[] = {1, 2, 4, 8};

  std::printf("=== PRINS write path: submit throughput and allocs/write "
              "(policy PRINS-rle, %u B blocks, %llu writes/thread) ===\n\n",
              kBs, static_cast<unsigned long long>(writes));
  std::printf("%-9s %8s %14s %13s %13s\n", "config", "threads", "writes/s",
              "allocs/write", "bytes/write");

  std::vector<Cell> cells;
  for (const int threads : thread_counts) {
    cells.push_back(
        run_cell("baseline", threads, writes, /*shards=*/1, /*pool=*/false));
    cells.push_back(
        run_cell("sharded", threads, writes, /*shards=*/8, /*pool=*/true));
    for (std::size_t i = cells.size() - 2; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::printf("%-9s %8d %14.0f %13.2f %13.1f\n", c.config, c.threads,
                  c.writes_per_sec, c.allocs_per_write,
                  c.alloc_bytes_per_write);
    }
  }

  // Headlines: 4-writer speedup and the sharded allocation floor.
  double base_4t = 0, shard_4t = 0, shard_allocs = 0;
  for (const Cell& c : cells) {
    if (c.threads == 4 && std::strcmp(c.config, "baseline") == 0) {
      base_4t = c.writes_per_sec;
    }
    if (c.threads == 4 && std::strcmp(c.config, "sharded") == 0) {
      shard_4t = c.writes_per_sec;
      shard_allocs = c.allocs_per_write;
    }
  }
  const double speedup = base_4t > 0 ? shard_4t / base_4t : 0.0;
  std::printf("\nspeedup_4_writers: %.2fx (sharded %.0f vs baseline %.0f "
              "writes/s)\n",
              speedup, shard_4t, base_4t);
  std::printf("sharded_allocs_per_write_4_writers: %.2f\n", shard_allocs);
  std::printf("hardware_threads: %u\n", std::thread::hardware_concurrency());

  FILE* json = std::fopen("BENCH_write_path.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"block_size\": %u,\n", kBs);
    std::fprintf(json, "  \"writes_per_thread\": %llu,\n",
                 static_cast<unsigned long long>(writes));
    std::fprintf(json, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(json, "  \"speedup_4_writers\": %.3f,\n", speedup);
    std::fprintf(json, "  \"sharded_allocs_per_write_4_writers\": %.3f,\n",
                 shard_allocs);
    std::fprintf(json, "  \"rows\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(json,
                   "    {\"config\": \"%s\", \"threads\": %d, "
                   "\"writes_per_sec\": %.1f, \"allocs_per_write\": %.3f, "
                   "\"alloc_bytes_per_write\": %.1f}%s\n",
                   c.config, c.threads, c.writes_per_sec, c.allocs_per_write,
                   c.alloc_bytes_per_write, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_write_path.json\n");
  }
  return 0;
}
