// Ablation — the replication pipeline window on a high-latency link.
//
// The paper's closed-network model assumes one outstanding replication per
// node (stop-and-wait), which makes every write pay a full WAN round trip.
// The engine's pipeline_depth streams a window of messages before waiting
// for ACKs; on a propagation-dominated link the round trip amortizes over
// the window.  This bench measures wall-clock replication throughput for
// several window depths over an emulated 5 ms-RTT link.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/latent.h"
#include "prins/engine.h"
#include "prins/replica.h"

int main() {
  using namespace prins;
  constexpr std::uint32_t kBlockSize = 8192;
  constexpr std::uint64_t kBlocks = 256;
  constexpr int kWrites = 200;
  constexpr auto kOneWay = std::chrono::microseconds(2500);  // 5 ms RTT

  std::printf("=== Ablation: pipeline window vs replication throughput "
              "(5 ms RTT link) ===\n");
  std::printf("%d PRINS writes, 8 KB blocks, ~10%% dirty\n\n", kWrites);
  std::printf("%-8s %14s %16s %14s\n", "window", "total (s)", "writes/sec",
              "speedup");

  double baseline = 0;
  for (std::size_t depth : {1ul, 4ul, 16ul, 64ul}) {
    auto primary = std::make_shared<MemDisk>(kBlocks, kBlockSize);
    EngineConfig config;
    config.policy = ReplicationPolicy::kPrins;
    config.pipeline_depth = depth;
    auto engine = std::make_unique<PrinsEngine>(primary, config);

    auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBlockSize);
    auto replica = std::make_shared<ReplicaEngine>(replica_disk);
    auto [primary_end, replica_end] = make_latent_pair(kOneWay);
    engine->add_replica(std::move(primary_end));
    std::thread server(
        [replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
          (void)replica->serve(*t);
        });

    Rng rng(7);
    Bytes block(kBlockSize);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kWrites; ++i) {
      const Lba lba = rng.next_below(kBlocks);
      (void)engine->read(lba, block);
      rng.fill(MutByteSpan(block).subspan(rng.next_below(kBlockSize - 800),
                                          800));
      if (!engine->write(lba, block).is_ok()) return 1;
    }
    if (!engine->drain().is_ok()) return 1;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (depth == 1) baseline = elapsed;
    std::printf("%-8zu %14.2f %16.1f %13.1fx\n", depth, elapsed,
                kWrites / elapsed, baseline / elapsed);

    engine.reset();
    server.join();
  }
  std::printf("\nstop-and-wait pays one RTT per write; a window of W "
              "amortizes it W-fold\n(until the queue, not the link, is the "
              "bottleneck).  Replicas apply in order\nat every depth — the "
              "consistency tests cover windows up to 16.\n\n");
  return 0;
}
