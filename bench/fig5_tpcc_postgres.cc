// Figure 5 — TPC-C on Postgres: KB transferred for replication vs block
// size.
//
// Paper setup: Postgres 7.1.3, 10 warehouses, 50 users.  Paper result:
// at 8 KB traditional ships ~3.5 GB/hour vs PRINS ~0.33 GB (about 10x,
// ~5x vs compressed); at 64 KB the factors are 64x and 32x.  Postgres's
// MVCC (update = insert a fresh row version) gives it more write traffic
// than the Oracle profile at the same transaction count.
#include "bench/fig_common.h"
#include "workload/tpcc.h"

int main(int argc, char** argv) {
  using namespace prins;
  bench::FigureSpec spec;
  spec.title = "Figure 5: TPC-C / Postgres profile — replication traffic";
  spec.paper_expectation =
      "8KB: ~10x vs traditional (3.5GB -> 0.33GB), ~5x vs compressed; "
      "64KB: ~64x / ~32x";
  spec.transactions = bench::transactions_from_argv(argc, argv, 800);

  WorkloadFactory factory = [] {
    TpccConfig config;
    config.profile = postgres_profile();
    config.warehouses = 10;
    config.districts_per_warehouse = 10;
    config.customers_per_district = 150;
    config.items = 1000;
    config.order_capacity = 30000;
    config.seed = 20060105;
    return std::make_unique<Tpcc>(config);
  };
  return bench::run_figure(spec, factory);
}
