// Figure 10 — router queueing time vs write request rate (M/M/1, T1,
// 8 KB blocks).
//
// Paper result: the traditional techniques saturate the router at a
// handful of writes per second (traditional first, compressed a little
// later), while PRINS sustains far higher request rates with near-zero
// queueing time across the plotted range (1..56 req/s).
#include <cstdio>

#include "bench/mva_common.h"
#include "queueing/mm1.h"

int main(int argc, char** argv) {
  using namespace prins;
  const std::uint64_t transactions =
      bench::transactions_from_argv(argc, argv, 300);

  std::printf("=== Figure 10: router queueing time vs write rate (T1, "
              "8 KB, M/M/1) ===\n");
  std::printf("paper: traditional saturates within a few req/s; PRINS "
              "sustains the whole 1..56 range\n\n");

  const auto sizes = bench::measure_message_sizes(transactions);
  if (sizes.size() != 3) return 1;

  std::map<ReplicationPolicy, double> service;
  std::printf("service times (per router):\n");
  for (const auto& [policy, bytes] : sizes) {
    service[policy] =
        router_service_time_sec(static_cast<std::uint64_t>(bytes), kT1);
    std::printf("  %-15s S=%.5f s  (saturates at %.1f req/s)\n",
                std::string(policy_name(policy)).c_str(), service[policy],
                1.0 / service[policy]);
  }

  auto cell = [&](ReplicationPolicy policy, double rate) {
    const auto r = solve_mm1(rate, service[policy]);
    return r.saturated ? -1.0 : r.queueing_time_sec;
  };

  std::printf("\n%-10s %16s %16s %16s   (-1 = saturated)\n", "rate",
              "Wq traditional", "Wq compressed", "Wq PRINS");
  for (int rate = 1; rate <= 56; rate += 5) {
    std::printf("%-10d %16.4f %16.4f %16.4f\n", rate,
                cell(ReplicationPolicy::kTraditional, rate),
                cell(ReplicationPolicy::kTraditionalCompressed, rate),
                cell(ReplicationPolicy::kPrins, rate));
  }
  std::printf("\n");
  return 0;
}
