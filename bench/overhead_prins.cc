// §4 overhead claim — "for all the experiments performed, the overhead
// [of PRINS's extra parity computation and I/O] is less than 10% of
// traditional replications.  ...  PRINS can leverage the parity
// computation of RAID.  In this case, the overhead is completely
// negligible."
//
// The paper's 10% is PRINS's *extra work* relative to the total cost of a
// traditional replicated write on their testbed (which includes pushing
// the whole block through the iSCSI/GigE stack).  This bench measures the
// primary-side CPU of each variant on writes that dirty ~10% of an 8 KB
// block, then adds the modelled wire time of each policy's payload on a
// gigabit link to reproduce that comparison:
//   traditional        — local write + copy-out of the block
//   PRINS (read-old)   — local write + extra read-old + XOR + encode
//   PRINS (RAID tap)   — RAID small write (P' computed anyway) + encode
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "block/mem_disk.h"
#include "codec/codec.h"
#include "common/rng.h"
#include "net/packet_model.h"
#include "parity/xor.h"
#include "raid/raid_array.h"

namespace {

using namespace prins;

constexpr std::uint32_t kBlockSize = 8192;
constexpr std::uint64_t kBlocks = 1024;
constexpr int kWrites = 20000;
constexpr double kGigabitBytesPerSec = 125e6;

/// Per-LBA current images; each write mutates ~10% of the block relative
/// to what is on disk at that LBA, like a real page update.
struct ImageSet {
  std::vector<Bytes> images;
  Rng rng{2};

  explicit ImageSet(std::uint64_t blocks) : images(blocks) {
    Rng init(1);
    for (auto& b : images) {
      b.resize(kBlockSize);
      init.fill(b);
    }
  }

  /// Mutate and return the next content of `lba`.
  const Bytes& next(Lba lba) {
    Bytes& block = images[lba];
    const std::size_t len = block.size() / 10;
    const std::size_t at = rng.next_below(block.size() - len + 1);
    rng.fill(MutByteSpan(block).subspan(at, len));
    return block;
  }
};

struct Measurement {
  double cpu_sec;
  std::uint64_t payload_bytes;  // total replication payload produced
};

Measurement time_loop(const char* name,
                      const std::function<std::size_t(int)>& body) {
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t payload = 0;
  for (int i = 0; i < kWrites; ++i) payload += body(i);
  const auto stop = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(stop - start).count();
  std::printf("  %-22s %8.3f s CPU  (%5.1f us/write, %6.1f payload B/write)\n",
              name, sec, 1e6 * sec / kWrites,
              static_cast<double>(payload) / kWrites);
  return {sec, payload};
}

double wire_sec(std::uint64_t payload_bytes) {
  return static_cast<double>(wire_bytes_for(payload_bytes)) /
         kGigabitBytesPerSec;
}

}  // namespace

int main() {
  std::printf("=== PRINS primary-side overhead (paper: <10%% of a "
              "traditional replicated write; ~0 with RAID) ===\n");
  std::printf("%d writes, 8 KB blocks, ~10%% of each block dirtied per "
              "write, GigE wire model\n\n",
              kWrites);

  // Traditional: write locally, copy the block out as the payload.
  auto disk_traditional = std::make_shared<MemDisk>(kBlocks, kBlockSize);
  ImageSet images_t(kBlocks);
  const Measurement traditional =
      time_loop("traditional", [&](int i) -> std::size_t {
        const Lba lba = static_cast<Lba>(i) % kBlocks;
        const Bytes& block = images_t.next(lba);
        (void)disk_traditional->write(lba, block);
        return encode_frame(codec_for(CodecId::kNull), block).size();
      });

  // PRINS without RAID: extra read of the old block + XOR + encode.
  auto disk_prins = std::make_shared<MemDisk>(kBlocks, kBlockSize);
  ImageSet images_p(kBlocks);
  Bytes old_block(kBlockSize);
  const Measurement prins =
      time_loop("PRINS (read-old)", [&](int i) -> std::size_t {
        const Lba lba = static_cast<Lba>(i) % kBlocks;
        const Bytes& block = images_p.next(lba);
        (void)disk_prins->read(lba, old_block);
        (void)disk_prins->write(lba, block);
        const Bytes delta = parity_delta(block, old_block);
        return encode_frame(codec_for(CodecId::kZeroRleLz), delta).size();
      });

  // PRINS over RAID-5: the small-write path computes P' anyway.
  auto make_array = [] {
    std::vector<std::shared_ptr<BlockDevice>> members;
    for (int i = 0; i < 4; ++i) {
      members.push_back(std::make_shared<MemDisk>(kBlocks, kBlockSize));
    }
    auto array = RaidArray::create(RaidLevel::kRaid5, std::move(members));
    return std::shared_ptr<RaidArray>(std::move(*array));
  };
  auto array = make_array();
  Bytes tapped;
  array->set_parity_observer([&tapped](Lba, ByteSpan delta, std::size_t) {
    tapped.assign(delta.begin(), delta.end());
  });
  ImageSet images_r(kBlocks);
  const Measurement raid_prins =
      time_loop("PRINS (RAID tap)", [&](int i) -> std::size_t {
        const Lba lba = static_cast<Lba>(i) % kBlocks;
        (void)array->write(lba, images_r.next(lba));
        return encode_frame(codec_for(CodecId::kZeroRleLz), tapped).size();
      });

  // RAID writes without any PRINS work, to isolate the tap's cost.
  auto array_base = make_array();
  ImageSet images_b(kBlocks);
  const Measurement raid_base =
      time_loop("RAID write (baseline)", [&](int i) -> std::size_t {
        const Lba lba = static_cast<Lba>(i) % kBlocks;
        (void)array_base->write(lba, images_b.next(lba));
        return 0;
      });

  const double trad_total =
      traditional.cpu_sec + kWrites * wire_sec(traditional.payload_bytes /
                                               kWrites);
  const double prins_extra_cpu = prins.cpu_sec - traditional.cpu_sec;
  const double tap_extra_cpu = raid_prins.cpu_sec - raid_base.cpu_sec;
  const double raid_total =
      raid_base.cpu_sec + kWrites * wire_sec(traditional.payload_bytes /
                                             kWrites);

  std::printf("\nend-to-end cost of a traditional replicated write "
              "(CPU + GigE wire): %.1f us\n",
              1e6 * trad_total / kWrites);
  std::printf("PRINS extra computation (read-old path): %.1f us/write = "
              "%.1f%% of traditional (paper: <10%%)\n",
              1e6 * prins_extra_cpu / kWrites,
              100.0 * prins_extra_cpu / trad_total);
  // The tap removes PRINS's extra read (the dominant cost on real disks);
  // what remains is the encode, a few microseconds.  The paper calls this
  // negligible against its testbed's millisecond-scale disk writes — at
  // a (conservative) 1 ms RAID write, the tap's share is well under 2%.
  std::printf("PRINS extra computation (RAID tap):      %.1f us/write = "
              "%.1f%% of an in-memory RAID write pipeline,\n"
              "                                         %.2f%% of a 1 ms "
              "disk-backed RAID write (paper: negligible)\n",
              1e6 * tap_extra_cpu / kWrites,
              100.0 * tap_extra_cpu / raid_total,
              100.0 * (tap_extra_cpu / kWrites) / 1e-3);
  std::printf("net effect incl. wire time: PRINS write costs %.1f us vs "
              "traditional %.1f us (%.1fx cheaper end-to-end)\n\n",
              1e6 * (prins.cpu_sec / kWrites + wire_sec(prins.payload_bytes /
                                                        kWrites)),
              1e6 * trad_total / kWrites,
              trad_total / (prins.cpu_sec +
                            kWrites * wire_sec(prins.payload_bytes / kWrites)));
  return 0;
}
