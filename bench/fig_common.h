// Shared scaffolding for the Figure 4-7 traffic benches.
//
// Each figure binary declares a workload factory and calls run_figure(),
// which sweeps the paper's five block sizes across the three replication
// techniques and prints the figure's bars (KB transferred), the savings
// ratios the paper quotes, and the per-policy mean payload size that
// feeds the queueing figures.
//
// argv[1] overrides the transaction count (larger = closer to the paper's
// one-hour runs; the ratios stabilise quickly).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.h"

namespace prins::bench {

inline std::uint64_t transactions_from_argv(int argc, char** argv,
                                            std::uint64_t default_count) {
  if (argc > 1) {
    const auto v = std::strtoull(argv[1], nullptr, 10);
    if (v > 0) return v;
  }
  return default_count;
}

struct FigureSpec {
  std::string title;
  std::string paper_expectation;  // the shape the paper reports
  std::uint64_t transactions;
};

inline int run_figure(const FigureSpec& spec, const WorkloadFactory& factory) {
  std::printf("=== %s ===\n", spec.title.c_str());
  std::printf("paper: %s\n", spec.paper_expectation.c_str());
  std::printf("transactions per cell: %llu\n\n",
              static_cast<unsigned long long>(spec.transactions));

  SweepConfig config;
  config.transactions = spec.transactions;
  auto results = run_sweep(factory, config);
  if (!results.is_ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 results.status().to_string().c_str());
    return 1;
  }

  std::printf("%-10s %16s %16s %16s %12s %12s\n", "block", "traditional KB",
              "compressed KB", "PRINS KB", "trad/PRINS", "comp/PRINS");
  double trad = 0, comp = 0, prins = 0;
  for (const auto& r : *results) {
    const double kb = static_cast<double>(r.sent.payload_bytes) / 1024.0;
    switch (r.policy) {
      case ReplicationPolicy::kTraditional: trad = kb; break;
      case ReplicationPolicy::kTraditionalCompressed: comp = kb; break;
      case ReplicationPolicy::kPrins: prins = kb; break;
      default: break;
    }
    if (!r.replicas_consistent) {
      std::fprintf(stderr, "REPLICA DIVERGED at block=%u policy=%s\n",
                   r.block_size, std::string(policy_name(r.policy)).c_str());
      return 1;
    }
    if (r.policy == ReplicationPolicy::kPrins) {
      std::printf("%-10u %16.1f %16.1f %16.1f %11.1fx %11.1fx\n",
                  r.block_size, trad, comp, prins, trad / prins, comp / prins);
    }
  }

  std::printf("\nper-write mean payload bytes at 8 KB blocks "
              "(feeds Figures 8-10):\n");
  for (const auto& r : *results) {
    if (r.block_size != 8192) continue;
    std::printf("  %-15s %10.1f bytes/write  (%llu writes)\n",
                std::string(policy_name(r.policy)).c_str(),
                r.mean_payload_bytes,
                static_cast<unsigned long long>(r.engine.writes));
  }
  std::printf("\nall replicas verified byte-identical to the primary.\n\n");
  return 0;
}

}  // namespace prins::bench
