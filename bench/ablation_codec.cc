// Ablation — how much of PRINS's win is "the parity is mostly zeros"
// (zero-RLE) vs "the residue compresses" (LZ on top)?
//
// Sweeps the dirty fraction of an 8 KB parity block from 1% to 50% and
// reports the encoded size under each codec, including the paper's
// traditional-with-zlib baseline applied to the full new block.
#include <cstdio>

#include "codec/codec.h"
#include "common/rng.h"
#include "parity/xor.h"
#include "workload/text.h"

int main() {
  using namespace prins;
  constexpr std::size_t kBlock = 8192;

  std::printf("=== Ablation: parity encoding vs dirty fraction (8 KB "
              "blocks) ===\n");
  std::printf("columns are encoded payload bytes per write\n\n");
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "dirty%", "traditional",
              "trad+lz", "parity+rle", "parity+rle+lz", "parity raw");

  Rng rng(1);
  for (double dirty : {0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50}) {
    // Old block: realistic text+numeric page content.
    Bytes old_block(kBlock);
    fill_words(rng, MutByteSpan(old_block).first(kBlock / 2));
    fill_numeric(rng, MutByteSpan(old_block).subspan(kBlock / 2));
    // New block: splice `dirty` fraction of fresh text in a few runs.
    Bytes new_block = old_block;
    const std::size_t total = static_cast<std::size_t>(dirty * kBlock);
    const std::size_t runs = 4;
    for (std::size_t r = 0; r < runs; ++r) {
      const std::size_t len = total / runs;
      const std::size_t at = rng.next_below(kBlock - len + 1);
      fill_words(rng, MutByteSpan(new_block).subspan(at, len));
    }
    const Bytes parity = parity_delta(new_block, old_block);

    const std::size_t traditional = kBlock;
    const std::size_t trad_lz =
        codec_for(CodecId::kLz).encode(new_block).size();
    const std::size_t rle = codec_for(CodecId::kZeroRle).encode(parity).size();
    const std::size_t rle_lz =
        codec_for(CodecId::kZeroRleLz).encode(parity).size();
    std::printf("%-8.0f %12zu %12zu %12zu %12zu %12zu\n", dirty * 100,
                traditional, trad_lz, rle, rle_lz, count_nonzero(parity));
  }

  std::printf("\ntakeaway: zero-RLE alone captures essentially the whole "
              "win — the encoded size\ntracks the raw changed-byte count.  "
              "LZ on the RLE literals adds little here\n(XOR of two text "
              "streams has little self-similarity) but costs little, and "
              "helps\non structured deltas (headers, numeric columns).  "
              "Parity encoding beats\ncompressing the full block at every "
              "dirty fraction up to 50%%.\n\n");
  return 0;
}
