// Empirical companion to Figure 8 — instead of solving the queueing
// model, run the real engine stack over a WAN-shaped link and measure
// wall-clock replication time per write for each policy.
//
// The link emulates T1 sped up 50x (ratios between policies are
// preserved exactly; only absolute time shrinks), one node, one replica,
// 8 KB blocks dirtied ~10% per write — the per-write service times that
// feed the model, now measured instead of derived.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "block/mem_disk.h"
#include "common/rng.h"
#include "net/inproc.h"
#include "net/shaped_transport.h"
#include "prins/engine.h"
#include "prins/replica.h"

int main() {
  using namespace prins;
  constexpr std::uint32_t kBlockSize = 8192;
  constexpr std::uint64_t kBlocks = 128;
  constexpr int kWrites = 60;
  constexpr double kScale = 50.0;

  std::printf("=== Empirical per-write replication time over an emulated "
              "T1 (sped up %.0fx) ===\n",
              kScale);
  std::printf("%d writes, 8 KB blocks, ~10%% dirtied per write, "
              "2-hop path\n\n",
              kWrites);
  std::printf("%-15s %18s %22s\n", "policy", "total time (s)",
              "per write (ms, T1-scale)");

  double per_write_ms[2] = {0, 0};
  int row = 0;
  for (ReplicationPolicy policy :
       {ReplicationPolicy::kTraditional, ReplicationPolicy::kPrins}) {
    auto primary = std::make_shared<MemDisk>(kBlocks, kBlockSize);
    EngineConfig config;
    config.policy = policy;
    auto engine = std::make_unique<PrinsEngine>(primary, config);

    auto replica_disk = std::make_shared<MemDisk>(kBlocks, kBlockSize);
    auto replica = std::make_shared<ReplicaEngine>(replica_disk);
    auto [primary_end, replica_end] = make_inproc_pair();
    ShapingConfig shaping;
    shaping.line = kT1;
    shaping.hops = 2;
    shaping.bandwidth_scale = kScale;
    engine->add_replica(std::make_unique<ShapedTransport>(
        std::move(primary_end), shaping));
    std::thread server(
        [replica, t = std::shared_ptr<Transport>(std::move(replica_end))] {
          (void)replica->serve(*t);
        });

    Rng rng(3);
    Bytes block(kBlockSize);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kWrites; ++i) {
      const Lba lba = rng.next_below(kBlocks);
      (void)engine->read(lba, block);
      rng.fill(MutByteSpan(block).subspan(
          rng.next_below(kBlockSize - 800), 800));
      if (!engine->write(lba, block).is_ok()) return 1;
    }
    if (!engine->drain().is_ok()) return 1;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    per_write_ms[row] = elapsed / kWrites * kScale * 1000.0;
    std::printf("%-15s %18.2f %22.1f\n",
                std::string(policy_name(policy)).c_str(), elapsed,
                per_write_ms[row]);
    ++row;

    engine.reset();
    server.join();
  }

  std::printf("\nmeasured traditional/PRINS per-write time ratio: %.1fx\n",
              per_write_ms[0] / per_write_ms[1]);
  std::printf("(the queueing figures' service-time ratio, now observed on "
              "the real replication path)\n\n");
  return 0;
}
