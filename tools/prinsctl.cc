// prinsctl — run PRINS nodes from the command line.
//
// A minimal operational wrapper over the library, enough to stand up the
// paper's testbed on real machines:
//
//   # on the replica host
//   prinsctl replica --file replica.img --blocks 65536 --bs 8192 --port 3261
//
//   # on the storage host (serves iSCSI to applications, replicates out)
//   prinsctl target --file primary.img --blocks 65536 --bs 8192
//                   --port 3260 --replica 10.0.0.2:3261 [--policy prins]
//
//   # anywhere: list targets a portal exposes
//   prinsctl discover --host 10.0.0.1 --port 3260
//
// Both server modes run until the process is interrupted.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "block/file_disk.h"
#include "block/integrity_disk.h"
#include "block/mem_disk.h"
#include "cluster/cluster_router.h"
#include "cluster/pg_map.h"
#include "cluster/pg_membership.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/logging.h"
#include "iscsi/initiator.h"
#include "iscsi/reactor_target.h"
#include "iscsi/target.h"
#include "net/reactor.h"
#include "net/reactor_tcp.h"
#include "net/tcp.h"
#include "prins/engine.h"
#include "prins/journal.h"
#include "prins/reactor_server.h"
#include "prins/read_router.h"
#include "prins/replica.h"

namespace {

using namespace prins;

struct Options {
  std::map<std::string, std::string> values;

  const char* get(const std::string& key, const char* fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second.c_str();
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback
                              : std::strtoull(it->second.c_str(), nullptr, 10);
  }
};

Options parse_options(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i + 1 < argc; i += 2) {
    const char* key = argv[i];
    if (std::strncmp(key, "--", 2) == 0) {
      options.values[key + 2] = argv[i + 1];
    }
  }
  return options;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  prinsctl replica  --file PATH --blocks N --bs BYTES "
               "--port P [--trap 1] [--sidecar PATH] [--intents PATH]\n"
               "                    [--apply-shards N] [--cache-blocks N] "
               "[--ack-batch N] [--stats SECS] [--epoch N]\n"
               "  prinsctl target   --file PATH --blocks N --bs BYTES "
               "--port P [--replica HOST:PORT] [--policy "
               "traditional|compressed|prins] [--sidecar PATH]\n"
               "                    [--journal PATH] [--stats SECS] "
               "[--epoch N]\n"
               "  prinsctl promote  --file PATH --blocks N --bs BYTES "
               "--port P [--intents PATH] [--replica HOST:PORT]\n"
               "                    [--policy ...] [--journal PATH] "
               "[--stats SECS] [--epoch N]\n"
               "  prinsctl scrub    --file PATH --blocks N --bs BYTES "
               "--sidecar PATH [--replica HOST:PORT] [--rate BLOCKS/S]\n"
               "  prinsctl discover --host H --port P\n"
               "  prinsctl cluster serve --blocks N --bs BYTES [--dir DIR] "
               "[--mirrors R] [--sync 1] [--stats SECS] [--json 1]\n"
               "  prinsctl cluster route --blocks N --bs BYTES [--writes N] "
               "[--stats 1] [--json 1]\n"
               "PRINS_CLUSTER_NODES=id=HOST:PORT,... names the cluster "
               "members (serve binds every port locally; route connects "
               "out).\n"
               "PRINS_PG_COUNT sets the placement-group count (power of "
               "two, default 64); both sides derive the same genesis map "
               "from the node list alone.\n"
               "PRINS_EPOCH sets the fencing epoch where --epoch is not "
               "given (flag wins).\n"
               "PRINS_READ_REPLICAS=H1:P1,H2:P2 offloads conflict-free "
               "reads to those mirrors;\n"
               "PRINS_READ_POLICY=rr|least picks the spread (default "
               "rr).\n");
  return 2;
}

/// Fencing epoch for this process: --epoch beats PRINS_EPOCH beats 0 (the
/// pre-failover legacy world, which fences nothing).
std::uint64_t epoch_knob(const Options& options) {
  if (options.values.count("epoch") != 0) return options.get_u64("epoch", 0);
  if (auto env = parse_env_size("PRINS_EPOCH", 1,
                                std::numeric_limits<std::size_t>::max())) {
    return static_cast<std::uint64_t>(*env);
  }
  return 0;
}

/// Open the backing file, optionally wrapped in an IntegrityDisk when
/// --sidecar is given.  Exits with a message on failure.
std::shared_ptr<BlockDevice> open_device(const Options& options,
                                         const char* default_file) {
  auto disk = FileDisk::open(options.get("file", default_file),
                             options.get_u64("blocks", 4096),
                             static_cast<std::uint32_t>(
                                 options.get_u64("bs", 8192)));
  if (!disk.is_ok()) {
    std::fprintf(stderr, "open backing file: %s\n",
                 disk.status().to_string().c_str());
    return nullptr;
  }
  std::shared_ptr<BlockDevice> device(std::move(*disk));
  const std::string sidecar = options.get("sidecar", "");
  if (!sidecar.empty()) {
    auto checked = IntegrityDisk::open(device, {sidecar});
    if (!checked.is_ok()) {
      std::fprintf(stderr, "open checksum sidecar: %s\n",
                   checked.status().to_string().c_str());
      return nullptr;
    }
    device = std::move(*checked);
  }
  return device;
}

/// The process-wide reactor pool, created on first use when PRINS_REACTOR
/// is set (PRINS_REACTOR_THREADS sizes it).  Null means classic blocking
/// sockets with one kernel thread parked per link.
std::shared_ptr<ReactorPool> shared_reactor_pool() {
  static std::shared_ptr<ReactorPool> pool =
      []() -> std::shared_ptr<ReactorPool> {
    if (!reactor_enabled_from_env()) return nullptr;
    auto created = ReactorPool::create();
    if (!created.is_ok()) {
      std::fprintf(stderr, "reactor pool unavailable (%s), using blocking "
                           "sockets\n",
                   created.status().to_string().c_str());
      return nullptr;
    }
    std::fprintf(stderr, "reactor transport enabled (%zu loop thread%s)\n",
                 (*created)->size(), (*created)->size() == 1 ? "" : "s");
    return std::move(*created);
  }();
  return pool;
}

Result<std::unique_ptr<Transport>> connect_tcp(const std::string& host,
                                               std::uint16_t port) {
  if (auto pool = shared_reactor_pool()) {
    return ReactorTcpTransport::connect(pool->next().shared_from_this(), host,
                                        port);
  }
  return TcpTransport::connect(host, port);
}

ReplicationPolicy parse_policy(const std::string& name) {
  if (name == "traditional") return ReplicationPolicy::kTraditional;
  if (name == "compressed") return ReplicationPolicy::kTraditionalCompressed;
  return ReplicationPolicy::kPrins;
}

/// PRINS_READ_REPLICAS: comma-separated HOST:PORT list of replica listeners
/// to offload conflict-free reads to.  Empty / unset disables offload.
/// Malformed entries are skipped with a warning rather than aborting the
/// node — read offload is an optimization, never a requirement.
std::vector<std::pair<std::string, std::uint16_t>> read_replica_specs() {
  std::vector<std::pair<std::string, std::uint16_t>> specs;
  const char* raw = std::getenv("PRINS_READ_REPLICAS");
  if (raw == nullptr) return specs;
  std::string list(raw);
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string spec = list.substr(start, comma - start);
    start = comma + 1;
    if (spec.empty()) continue;
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
      std::fprintf(stderr,
                   "PRINS_READ_REPLICAS: skipping \"%s\" (want HOST:PORT)\n",
                   spec.c_str());
      continue;
    }
    specs.emplace_back(spec.substr(0, colon),
                       static_cast<std::uint16_t>(std::strtoul(
                           spec.c_str() + colon + 1, nullptr, 10)));
  }
  return specs;
}

/// PRINS_READ_POLICY: "least" picks the link with the fewest reads in
/// flight; anything else (including unset) is round-robin.
ReadPolicy read_policy_knob() {
  const char* raw = std::getenv("PRINS_READ_POLICY");
  if (raw != nullptr && std::string(raw) == "least") {
    return ReadPolicy::kLeastOutstanding;
  }
  return ReadPolicy::kRoundRobin;
}

int run_replica(const Options& options) {
  std::shared_ptr<BlockDevice> disk = open_device(options, "replica.img");
  if (disk == nullptr) return 1;
  ReplicaConfig config;
  config.keep_trap_log = options.get_u64("trap", 0) != 0;
  config.cluster_epoch = epoch_knob(options);
  config.apply_shards =
      static_cast<std::size_t>(options.get_u64("apply-shards", 0));
  config.old_block_cache_blocks =
      static_cast<std::size_t>(options.get_u64("cache-blocks", 0));
  if (const std::uint64_t batch = options.get_u64("ack-batch", 0); batch > 0) {
    config.ack_coalesce_max = static_cast<std::size_t>(batch);
  }
  const std::string intents = options.get("intents", "");
  if (!intents.empty()) {
    auto log = WriteIntentLog::open(intents);
    if (!log.is_ok()) {
      std::fprintf(stderr, "open intent log: %s\n",
                   log.status().to_string().c_str());
      return 1;
    }
    config.intent_log = std::shared_ptr<WriteIntentLog>(std::move(*log));
  }
  auto replica = std::make_shared<ReplicaEngine>(disk, config);
  if (config.intent_log != nullptr) {
    auto damaged = replica->recover_intents();
    if (!damaged.is_ok()) {
      std::fprintf(stderr, "intent replay: %s\n",
                   damaged.status().to_string().c_str());
      return 1;
    }
    for (Lba lba : *damaged) {
      std::printf("torn block %llu awaits full-block repair\n",
                  static_cast<unsigned long long>(lba));
    }
  }
  const auto port = static_cast<std::uint16_t>(options.get_u64("port", 3261));
  const std::uint64_t stats_every = options.get_u64("stats", 0);
  auto banner = [&](std::uint16_t bound, const char* serving) {
    std::printf(
        "replica node on port %u (device %s, TRAP log %s, %zu apply shards, "
        "old-block cache %zu blocks, %s)\n",
        bound, options.get("file", "replica.img"),
        config.keep_trap_log ? "on" : "off", replica->apply_shards(),
        config.old_block_cache_blocks, serving);
  };
  // Periodic pipeline-counter report, one parseable line per interval;
  // never returns (both server modes run until the process is killed).
  auto report_stats_forever = [&]() {
    for (;;) {
      std::this_thread::sleep_for(
          std::chrono::seconds(stats_every > 0 ? stats_every : 3600));
      if (stats_every == 0) continue;
      const ReplicaMetrics m = replica->metrics();
      const double hit_rate =
          m.cache_hits + m.cache_misses > 0
              ? static_cast<double>(m.cache_hits) /
                    static_cast<double>(m.cache_hits + m.cache_misses)
              : 0.0;
      const double fsyncs_per_apply =
          m.intent_records > 0 ? static_cast<double>(m.intent_fsyncs) /
                                     static_cast<double>(m.intent_records)
                               : 0.0;
      const double batch_avg =
          m.ack_batches > 0 ? static_cast<double>(m.acks_batched) /
                                  static_cast<double>(m.ack_batches)
                            : 0.0;
      std::printf("stats: applied=%llu queue_peak=%llu ack_batches=%llu "
                  "ack_batch_avg=%.1f fsyncs_per_apply=%.3f "
                  "cache_hit_rate=%.3f naks=%llu dups=%llu "
                  "repair_reads=%llu client_reads=%llu stale_read_naks=%llu\n",
                  static_cast<unsigned long long>(m.writes_applied),
                  static_cast<unsigned long long>(m.apply_queue_peak),
                  static_cast<unsigned long long>(m.ack_batches), batch_avg,
                  fsyncs_per_apply, hit_rate,
                  static_cast<unsigned long long>(m.naks_sent),
                  static_cast<unsigned long long>(m.duplicates_dropped),
                  static_cast<unsigned long long>(m.repair_reads_served),
                  static_cast<unsigned long long>(m.client_reads_served),
                  static_cast<unsigned long long>(m.stale_read_naks));
      std::fflush(stdout);
    }
  };
  if (auto pool = shared_reactor_pool()) {
    // Thread-free serving: every session's frame loop runs as a reactor
    // handler feeding one shared set of apply workers, so the node costs
    // O(reactor_threads + apply_shards) threads however many primaries
    // connect.
    ReactorReplicaServerOptions server_options;
    server_options.port = port;
    server_options.ack_coalesce_max = config.ack_coalesce_max;
    auto server = ReactorReplicaServer::start(replica, pool, server_options);
    if (!server.is_ok()) {
      std::fprintf(stderr, "listen: %s\n",
                   server.status().to_string().c_str());
      return 1;
    }
    banner((*server)->port(), "thread-free reactor serving");
    report_stats_forever();
  }
  auto listener = TcpListener::listen(port);
  if (!listener.is_ok()) {
    std::fprintf(stderr, "listen: %s\n", listener.status().to_string().c_str());
    return 1;
  }
  banner((*listener)->port(), "thread-per-session serving");
  std::thread server = replica_serve_in_background(
      replica, std::shared_ptr<Listener>(std::move(*listener)));
  report_stats_forever();
  server.join();  // unreachable; keeps the thread joined on any exit path
  return 0;
}

/// Build the engine config every primary-side command shares: policy,
/// fencing epoch (--epoch / PRINS_EPOCH), the reactor transports when
/// enabled, and the crash-durable replication journal when --journal names
/// a file.
Result<EngineConfig> primary_engine_config(const Options& options) {
  EngineConfig config;
  config.policy = parse_policy(options.get("policy", "prins"));
  config.cluster_epoch = epoch_knob(options);
  // Offloading reads requires the engine to maintain its recent-writes
  // conflict window from the first write, so the knob is resolved here
  // rather than when the router is built.
  config.read_from_replicas = !read_replica_specs().empty();
  if (auto pool = shared_reactor_pool()) {
    // Retry/heal backoff rides the reactor's timer wheel instead of a
    // per-thread timed wait, and replica links are pumped by reactor
    // callbacks instead of one sender thread each.
    config.reactor = pool->at(0).shared_from_this();
    config.reactor_senders = true;
  }
  const std::string journal_path = options.get("journal", "");
  if (!journal_path.empty()) {
    PRINS_ASSIGN_OR_RETURN(auto journal,
                           ReplicationJournal::open(journal_path));
    config.journal = std::shared_ptr<ReplicationJournal>(std::move(journal));
  }
  return config;
}

/// Connect and attach the --replica HOST:PORT link, if one was given
/// (kInvalidArgument for bad syntax, the connect error otherwise).
Status attach_replica(PrinsEngine& engine, const Options& options) {
  const std::string replica_spec = options.get("replica", "");
  if (replica_spec.empty()) return Status::ok();
  const auto colon = replica_spec.rfind(':');
  if (colon == std::string::npos) {
    return invalid_argument("--replica expects HOST:PORT");
  }
  const std::string host = replica_spec.substr(0, colon);
  const auto port = static_cast<std::uint16_t>(
      std::strtoul(replica_spec.c_str() + colon + 1, nullptr, 10));
  PRINS_ASSIGN_OR_RETURN(auto link, connect_tcp(host, port));
  engine.add_replica(std::move(link));
  std::printf("replicating to %s with policy %s\n", replica_spec.c_str(),
              std::string(policy_name(
                  parse_policy(options.get("policy", "prins")))).c_str());
  return Status::ok();
}

/// EngineMetrics as one JSON object (no trailing newline) — the machine
/// half of --stats; benches and CI scrape this instead of the key=value
/// text.
std::string engine_metrics_json(const EngineMetrics& m) {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"epoch\": %llu, \"writes\": %llu, \"raw_bytes\": %llu, "
      "\"payload_bytes\": %llu, \"acks\": %llu, \"retries\": %llu, "
      "\"reconnects\": %llu, \"auto_resyncs\": %llu, "
      "\"stale_epoch_naks\": %llu, \"journal_frozen\": %llu, "
      "\"journal_watermark\": %llu, \"journal_pending\": %llu, "
      "\"journal_pending_bytes\": %llu, \"journal_spills\": %llu, "
      "\"replica_reads\": %llu, \"stale_read_retries\": %llu, "
      "\"read_conflicts_local\": %llu}",
      static_cast<unsigned long long>(m.cluster_epoch),
      static_cast<unsigned long long>(m.writes),
      static_cast<unsigned long long>(m.raw_bytes),
      static_cast<unsigned long long>(m.payload_bytes),
      static_cast<unsigned long long>(m.acks),
      static_cast<unsigned long long>(m.retries),
      static_cast<unsigned long long>(m.reconnects),
      static_cast<unsigned long long>(m.auto_resyncs),
      static_cast<unsigned long long>(m.stale_epoch_naks),
      static_cast<unsigned long long>(m.journal_frozen),
      static_cast<unsigned long long>(m.journal_watermark),
      static_cast<unsigned long long>(m.journal_pending),
      static_cast<unsigned long long>(m.journal_pending_bytes),
      static_cast<unsigned long long>(m.journal_spills),
      static_cast<unsigned long long>(m.replica_reads),
      static_cast<unsigned long long>(m.stale_read_retries),
      static_cast<unsigned long long>(m.read_conflicts_local));
  return buf;
}

/// Periodic engine counters, one parseable line per interval — epoch and
/// journal depth included so an operator can see a frozen watermark (a
/// down replica pinning the journal) or a fencing event at a glance.
/// --json 1 swaps the key=value text for one JSON object per line.
/// Never returns.
[[noreturn]] void report_engine_stats_forever(PrinsEngine& engine,
                                              std::uint64_t every_secs,
                                              bool json) {
  for (;;) {
    std::this_thread::sleep_for(
        std::chrono::seconds(every_secs > 0 ? every_secs : 3600));
    if (every_secs == 0) continue;
    const EngineMetrics m = engine.metrics();
    if (json) {
      std::printf("%s\n", engine_metrics_json(m).c_str());
      std::fflush(stdout);
      continue;
    }
    std::printf("stats: epoch=%llu writes=%llu acks=%llu reconnects=%llu "
                "stale_epoch_naks=%llu journal_frozen=%llu "
                "journal_watermark=%llu journal_pending=%llu "
                "journal_pending_bytes=%llu journal_spills=%llu "
                "replica_reads=%llu stale_read_retries=%llu "
                "read_conflicts_local=%llu\n",
                static_cast<unsigned long long>(m.cluster_epoch),
                static_cast<unsigned long long>(m.writes),
                static_cast<unsigned long long>(m.acks),
                static_cast<unsigned long long>(m.reconnects),
                static_cast<unsigned long long>(m.stale_epoch_naks),
                static_cast<unsigned long long>(m.journal_frozen),
                static_cast<unsigned long long>(m.journal_watermark),
                static_cast<unsigned long long>(m.journal_pending),
                static_cast<unsigned long long>(m.journal_pending_bytes),
                static_cast<unsigned long long>(m.journal_spills),
                static_cast<unsigned long long>(m.replica_reads),
                static_cast<unsigned long long>(m.stale_read_retries),
                static_cast<unsigned long long>(m.read_conflicts_local));
    std::fflush(stdout);
  }
}

/// Serve `engine` as an iSCSI target on --port until killed (shared tail
/// of `target` and `promote`).
int serve_target(std::shared_ptr<PrinsEngine> engine, const Options& options,
                 const char* default_file) {
  // PRINS_READ_REPLICAS interposes the read router between iSCSI and the
  // engine: conflict-free reads fan out across the listed mirrors, writes
  // and conflicted reads pass through to the engine untouched.
  std::shared_ptr<BlockDevice> device = engine;
  const auto read_specs = read_replica_specs();
  if (!read_specs.empty()) {
    ReadRouterConfig router_config;
    router_config.policy = read_policy_knob();
    auto router = std::make_shared<ReadRouter>(engine, router_config);
    for (const auto& [host, port] : read_specs) {
      auto link = connect_tcp(host, port);
      if (!link.is_ok()) {
        std::fprintf(stderr, "read replica %s:%u unavailable (%s); reads "
                             "stay local\n",
                     host.c_str(), port, link.status().to_string().c_str());
        continue;
      }
      router->add_read_replica(std::move(*link));
    }
    std::printf("read offload: %zu mirror link%s, %s policy\n",
                router->read_replica_count(),
                router->read_replica_count() == 1 ? "" : "s",
                router_config.policy == ReadPolicy::kLeastOutstanding
                    ? "least-outstanding"
                    : "round-robin");
    device = std::move(router);
  }
  auto target = std::make_shared<iscsi::IscsiTarget>(device);
  const auto port = static_cast<std::uint16_t>(options.get_u64("port", 3260));
  const std::uint64_t stats_every = options.get_u64("stats", 0);
  if (auto pool = shared_reactor_pool()) {
    // Thread-free serving: each session is an actor on a small worker
    // pool instead of a parked PDU thread.
    iscsi::ReactorIscsiServerOptions server_options;
    server_options.port = port;
    auto server = iscsi::ReactorIscsiServer::start(target, pool,
                                                   server_options);
    if (!server.is_ok()) {
      std::fprintf(stderr, "listen: %s\n",
                   server.status().to_string().c_str());
      return 1;
    }
    std::printf("iSCSI target on port %u (device %s, epoch %llu, "
                "thread-free)\n",
                (*server)->port(), options.get("file", default_file),
                static_cast<unsigned long long>(engine->cluster_epoch()));
    std::fflush(stdout);  // the serve loop blocks; surface the banner now
    report_engine_stats_forever(*engine, stats_every, options.get_u64("json", 0) != 0);
  }
  auto listener = TcpListener::listen(port);
  if (!listener.is_ok()) {
    std::fprintf(stderr, "listen: %s\n", listener.status().to_string().c_str());
    return 1;
  }
  std::printf("iSCSI target on port %u (device %s, epoch %llu)\n",
              (*listener)->port(), options.get("file", default_file),
              static_cast<unsigned long long>(engine->cluster_epoch()));
  std::fflush(stdout);
  std::thread server = iscsi::serve_in_background(
      target, std::shared_ptr<Listener>(std::move(*listener)));
  report_engine_stats_forever(*engine, stats_every, options.get_u64("json", 0) != 0);
}

int run_target(const Options& options) {
  std::shared_ptr<BlockDevice> disk = open_device(options, "primary.img");
  if (disk == nullptr) return 1;
  auto engine_config = primary_engine_config(options);
  if (!engine_config.is_ok()) {
    std::fprintf(stderr, "engine setup: %s\n",
                 engine_config.status().to_string().c_str());
    return 1;
  }
  auto engine = std::make_shared<PrinsEngine>(disk, *engine_config);
  if (Status attached = attach_replica(*engine, options); !attached.is_ok()) {
    std::fprintf(stderr, "%s\n", attached.to_string().c_str());
    return attached.code() == ErrorCode::kInvalidArgument ? 2 : 1;
  }
  if (engine_config->journal != nullptr) {
    // Re-ship anything the previous incarnation journaled but never saw
    // acked by every replica (idempotent: replicas dedup).
    if (Status replayed = engine->replay_journal(); !replayed.is_ok()) {
      std::fprintf(stderr, "journal replay: %s\n",
                   replayed.to_string().c_str());
      return 1;
    }
  }
  return serve_target(std::move(engine), options, "primary.img");
}

int run_promote(const Options& options) {
  // Turn a (recovered) replica image into the live primary: replay the
  // write-intent log, refuse while any block is torn, mint the next
  // fencing epoch, delta-resync the surviving replica from the CDP trap
  // log, and serve iSCSI.  The old primary, should it reappear, is fenced
  // by every node that saw a new-epoch frame.
  std::shared_ptr<BlockDevice> disk = open_device(options, "replica.img");
  if (disk == nullptr) return 1;
  ReplicaConfig replica_config;
  replica_config.keep_trap_log = true;  // promote() folds resyncs from it
  replica_config.cluster_epoch = epoch_knob(options);
  const std::string intents = options.get("intents", "");
  if (!intents.empty()) {
    auto log = WriteIntentLog::open(intents);
    if (!log.is_ok()) {
      std::fprintf(stderr, "open intent log: %s\n",
                   log.status().to_string().c_str());
      return 1;
    }
    replica_config.intent_log =
        std::shared_ptr<WriteIntentLog>(std::move(*log));
  }
  ReplicaEngine replica(disk, replica_config);
  if (replica_config.intent_log != nullptr) {
    auto damaged = replica.recover_intents();
    if (!damaged.is_ok()) {
      std::fprintf(stderr, "intent replay: %s\n",
                   damaged.status().to_string().c_str());
      return 1;
    }
    for (Lba lba : *damaged) {
      std::fprintf(stderr, "torn block %llu needs full-block repair before "
                           "this copy can lead\n",
                   static_cast<unsigned long long>(lba));
    }
  }
  auto engine_config = primary_engine_config(options);
  if (!engine_config.is_ok()) {
    std::fprintf(stderr, "engine setup: %s\n",
                 engine_config.status().to_string().c_str());
    return 1;
  }
  auto promoted = replica.promote(*engine_config);
  if (!promoted.is_ok()) {
    std::fprintf(stderr, "promote: %s\n",
                 promoted.status().to_string().c_str());
    return 1;
  }
  std::shared_ptr<PrinsEngine> engine = std::move(*promoted);
  std::printf("promoted to primary at cluster epoch %llu\n",
              static_cast<unsigned long long>(engine->cluster_epoch()));
  std::fflush(stdout);
  if (Status attached = attach_replica(*engine, options); !attached.is_ok()) {
    std::fprintf(stderr, "%s\n", attached.to_string().c_str());
    return attached.code() == ErrorCode::kInvalidArgument ? 2 : 1;
  }
  if (!std::string(options.get("replica", "")).empty()) {
    auto resynced = engine->resync_replica(0);
    if (!resynced.is_ok()) {
      std::fprintf(stderr, "survivor resync: %s\n",
                   resynced.status().to_string().c_str());
      return 1;
    }
    std::printf("survivor caught up with %llu folded deltas\n",
                static_cast<unsigned long long>(*resynced));
  }
  return serve_target(std::move(engine), options, "replica.img");
}

int run_scrub(const Options& options) {
  std::shared_ptr<BlockDevice> disk = open_device(options, "primary.img");
  if (disk == nullptr) return 1;
  if (options.values.count("sidecar") == 0) {
    std::fprintf(stderr,
                 "warning: scrubbing without --sidecar can only find "
                 "corruption the device itself reports\n");
  }

  EngineConfig engine_config;
  engine_config.policy = parse_policy(options.get("policy", "prins"));
  if (auto pool = shared_reactor_pool()) {
    engine_config.reactor = pool->at(0).shared_from_this();
    engine_config.reactor_senders = true;
  }
  PrinsEngine engine(disk, engine_config);

  const std::string replica_spec = options.get("replica", "");
  if (!replica_spec.empty()) {
    const auto colon = replica_spec.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--replica expects HOST:PORT\n");
      return 2;
    }
    auto link = connect_tcp(
        replica_spec.substr(0, colon),
        static_cast<std::uint16_t>(
            std::strtoul(replica_spec.c_str() + colon + 1, nullptr, 10)));
    if (!link.is_ok()) {
      std::fprintf(stderr, "connect to replica %s: %s\n",
                   replica_spec.c_str(), link.status().to_string().c_str());
      return 1;
    }
    engine.add_replica(std::move(*link));
  }

  ScrubberConfig scrub_config;
  scrub_config.blocks_per_second = options.get_u64("rate", 0);
  auto pass = engine.scrub(scrub_config);
  if (!pass.is_ok()) {
    std::fprintf(stderr, "scrub failed: %s\n",
                 pass.status().to_string().c_str());
    return 1;
  }
  std::printf("scanned    %llu blocks\n",
              static_cast<unsigned long long>(pass->blocks_scanned));
  std::printf("corrupt    %llu\n",
              static_cast<unsigned long long>(pass->corruptions_found));
  std::printf("repaired   %llu\n",
              static_cast<unsigned long long>(pass->repaired));
  for (const auto& [source, count] : pass->repaired_by) {
    std::printf("  via %-8s %llu\n", source.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("quarantined %llu\n",
              static_cast<unsigned long long>(pass->quarantined));
  std::printf("read errors %llu\n",
              static_cast<unsigned long long>(pass->read_errors));
  return pass->quarantined == 0 ? 0 : 1;
}

int run_discover(const Options& options) {
  auto transport = connect_tcp(
      options.get("host", "127.0.0.1"),
      static_cast<std::uint16_t>(options.get_u64("port", 3260)));
  if (!transport.is_ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 transport.status().to_string().c_str());
    return 1;
  }
  auto targets = iscsi::discover_targets(std::move(*transport));
  if (!targets.is_ok()) {
    std::fprintf(stderr, "discovery failed: %s\n",
                 targets.status().to_string().c_str());
    return 1;
  }
  for (const std::string& name : *targets) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// cluster: PG-sharded multi-primary serving and routing.

struct ClusterNodeSpec {
  std::string id;
  std::string host;
  std::uint16_t port = 0;
};

/// PRINS_CLUSTER_NODES (or --nodes): "id=HOST:PORT,id=HOST:PORT,...".  The
/// id list orders nothing — the genesis map is rendezvous-hashed, so every
/// party parsing the same list computes the same placement.
std::vector<ClusterNodeSpec> cluster_nodes_knob(const Options& options) {
  std::vector<ClusterNodeSpec> specs;
  std::string list = options.get("nodes", "");
  if (list.empty()) {
    const char* raw = std::getenv("PRINS_CLUSTER_NODES");
    if (raw != nullptr) list = raw;
  }
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    const auto colon = entry.rfind(':');
    if (eq == std::string::npos || eq == 0 || colon == std::string::npos ||
        colon < eq + 2 || colon + 1 >= entry.size()) {
      std::fprintf(stderr,
                   "PRINS_CLUSTER_NODES: skipping \"%s\" (want "
                   "id=HOST:PORT)\n",
                   entry.c_str());
      continue;
    }
    ClusterNodeSpec spec;
    spec.id = entry.substr(0, eq);
    spec.host = entry.substr(eq + 1, colon - eq - 1);
    spec.port = static_cast<std::uint16_t>(
        std::strtoul(entry.c_str() + colon + 1, nullptr, 10));
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// PRINS_PG_COUNT: placement groups in the map (rounded up to a power of
/// two by PgMap).  Both serve and route must agree on it.
std::uint32_t pg_count_knob() {
  if (auto env = parse_env_size("PRINS_PG_COUNT", 1, 1u << 20)) {
    return static_cast<std::uint32_t>(*env);
  }
  return 64;
}

/// Host every cluster node in this process: one PgMembership over the full
/// node list, a TCP client-frame listener per node on its configured port.
/// The single-process testbed shape — routers connect to the listed ports
/// exactly as they would to separate machines.
int run_cluster_serve(const Options& options) {
  const auto specs = cluster_nodes_knob(options);
  if (specs.empty()) {
    std::fprintf(stderr, "cluster serve: PRINS_CLUSTER_NODES (or --nodes) "
                         "must list the members\n");
    return 2;
  }
  const auto blocks = options.get_u64("blocks", 4096);
  const auto bs = static_cast<std::uint32_t>(options.get_u64("bs", 8192));
  const std::string dir = options.get("dir", "");

  cluster::MembershipConfig config;
  config.map.pg_count = pg_count_knob();
  config.map.mirrors =
      static_cast<std::uint32_t>(options.get_u64("mirrors", 1));
  config.sync_writes = options.get_u64("sync", 0) != 0;
  cluster::PgMembership membership(
      [&](const std::string& id) -> std::shared_ptr<BlockDevice> {
        if (dir.empty()) return std::make_shared<MemDisk>(blocks, bs);
        auto disk = FileDisk::open(dir + "/" + id + ".img", blocks, bs);
        if (!disk.is_ok()) {
          std::fprintf(stderr, "open %s/%s.img: %s\n", dir.c_str(),
                       id.c_str(), disk.status().to_string().c_str());
          return nullptr;
        }
        return std::shared_ptr<BlockDevice>(std::move(*disk));
      },
      config);
  for (const auto& spec : specs) {
    if (Status added = membership.add_node(spec.id); !added.is_ok()) {
      std::fprintf(stderr, "add node %s: %s\n", spec.id.c_str(),
                   added.to_string().c_str());
      return 1;
    }
  }
  if (Status started = membership.start(); !started.is_ok()) {
    std::fprintf(stderr, "cluster start: %s\n", started.to_string().c_str());
    return 1;
  }

  std::vector<std::thread> accept_threads;
  for (const auto& spec : specs) {
    auto listener = TcpListener::listen(spec.port);
    if (!listener.is_ok()) {
      std::fprintf(stderr, "listen %s on port %u: %s\n", spec.id.c_str(),
                   spec.port, listener.status().to_string().c_str());
      return 1;
    }
    std::printf("node %s serving client frames on port %u\n",
                spec.id.c_str(), (*listener)->port());
    accept_threads.emplace_back(
        [&membership, id = spec.id,
         listener = std::shared_ptr<Listener>(std::move(*listener))] {
          for (;;) {
            auto conn = listener->accept();
            if (!conn.is_ok()) return;
            std::thread([&membership, id,
                         transport = std::shared_ptr<Transport>(
                             std::move(*conn))] {
              (void)membership.serve_client(id, *transport);
            }).detach();
          }
        });
  }
  const auto map = membership.map();
  std::printf("cluster up: %zu nodes, %u PGs, %u mirror%s per PG, map epoch "
              "%llu\n",
              specs.size(), map->pg_count(), map->mirror_target(),
              map->mirror_target() == 1 ? "" : "s",
              static_cast<unsigned long long>(map->epoch()));
  std::fflush(stdout);

  const std::uint64_t stats_every = options.get_u64("stats", 0);
  const bool json = options.get_u64("json", 0) != 0;
  for (;;) {
    std::this_thread::sleep_for(
        std::chrono::seconds(stats_every > 0 ? stats_every : 3600));
    if (stats_every == 0) continue;
    if (json) {
      std::printf("{\"map_epoch\": %llu, \"nodes\": [",
                  static_cast<unsigned long long>(membership.map()->epoch()));
      bool first = true;
      for (const auto& node : membership.stats()) {
        std::printf("%s{\"id\": \"%s\", \"alive\": %s, \"pgs\": %zu, "
                    "\"engines\": %zu, \"mirror_sessions\": %zu, "
                    "\"metrics\": %s}",
                    first ? "" : ", ", node.id.c_str(),
                    node.alive ? "true" : "false", node.pgs.size(),
                    node.engines, node.mirror_sessions,
                    engine_metrics_json(node.metrics).c_str());
        first = false;
      }
      std::printf("]}\n");
    } else {
      for (const auto& node : membership.stats()) {
        std::printf("stats: node=%s alive=%d pgs=%zu engines=%zu "
                    "mirror_sessions=%zu writes=%llu acks=%llu\n",
                    node.id.c_str(), node.alive ? 1 : 0, node.pgs.size(),
                    node.engines, node.mirror_sessions,
                    static_cast<unsigned long long>(node.metrics.writes),
                    static_cast<unsigned long long>(node.metrics.acks));
      }
    }
    std::fflush(stdout);
  }
}

/// Route a write/read-back workload through a PG-aware router over the
/// listed nodes' client listeners, then report router counters (and per-PG
/// op counts with --stats 1).  The map is the deterministic genesis map —
/// no control channel needed to bootstrap.
int run_cluster_route(const Options& options) {
  const auto specs = cluster_nodes_knob(options);
  if (specs.empty()) {
    std::fprintf(stderr, "cluster route: PRINS_CLUSTER_NODES (or --nodes) "
                         "must list the members\n");
    return 2;
  }
  const auto blocks = options.get_u64("blocks", 4096);
  const auto bs = static_cast<std::uint32_t>(options.get_u64("bs", 8192));

  cluster::PgMapConfig map_config;
  map_config.pg_count = pg_count_knob();
  map_config.mirrors =
      static_cast<std::uint32_t>(options.get_u64("mirrors", 1));
  std::vector<std::string> ids;
  for (const auto& spec : specs) ids.push_back(spec.id);
  auto map = std::make_shared<const cluster::PgMap>(
      cluster::PgMap::build(ids, map_config));

  cluster::ClusterRouter router(bs, blocks, map, [map] { return map; });
  for (const auto& spec : specs) {
    router.add_node(spec.id,
                    std::make_shared<cluster::WireBackend>(
                        spec.id,
                        [host = spec.host, port = spec.port] {
                          return connect_tcp(host, port);
                        },
                        /*pool_size=*/4, std::chrono::milliseconds(2000)));
  }

  const std::uint64_t writes = options.get_u64("writes", 1024);
  Rng rng(options.get_u64("seed", 7));
  Bytes block(bs), check(bs);
  std::map<Lba, std::uint64_t> written;  // last write wins per LBA
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < writes; ++i) {
    const Lba lba = rng.next_below(blocks);
    const std::uint64_t stamp = mix64(lba ^ (i << 20));
    for (std::size_t off = 0; off < bs; off += sizeof(stamp)) {
      std::memcpy(block.data() + off, &stamp, sizeof(stamp));
    }
    if (Status s = router.write(lba, block); !s.is_ok()) {
      std::fprintf(stderr, "write lba %llu: %s\n",
                   static_cast<unsigned long long>(lba),
                   s.to_string().c_str());
      return 1;
    }
    written[lba] = stamp;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::uint64_t mismatches = 0;
  for (const auto& [lba, stamp] : written) {
    if (Status s = router.read(lba, check); !s.is_ok()) {
      std::fprintf(stderr, "read lba %llu: %s\n",
                   static_cast<unsigned long long>(lba),
                   s.to_string().c_str());
      return 1;
    }
    std::uint64_t got = 0;
    std::memcpy(&got, check.data() + bs - sizeof(got), sizeof(got));
    if (got != stamp) ++mismatches;
  }

  const cluster::RouterMetrics m = router.metrics();
  if (options.get_u64("json", 0) != 0) {
    std::printf("{\"map_epoch\": %llu, \"writes\": %llu, \"reads\": %llu, "
                "\"span_splits\": %llu, \"wrong_pg_retries\": %llu, "
                "\"unavailable_retries\": %llu, \"map_refreshes\": %llu, "
                "\"writes_per_sec\": %.1f, \"mismatches\": %llu}\n",
                static_cast<unsigned long long>(m.map_epoch),
                static_cast<unsigned long long>(m.writes),
                static_cast<unsigned long long>(m.reads),
                static_cast<unsigned long long>(m.span_splits),
                static_cast<unsigned long long>(m.wrong_pg_retries),
                static_cast<unsigned long long>(m.unavailable_retries),
                static_cast<unsigned long long>(m.map_refreshes),
                elapsed > 0 ? static_cast<double>(writes) / elapsed : 0.0,
                static_cast<unsigned long long>(mismatches));
  } else {
    std::printf("routed %llu writes + read-back over %zu nodes / %u PGs: "
                "%.0f writes/s, %llu mismatches, map epoch %llu\n",
                static_cast<unsigned long long>(writes), specs.size(),
                map->pg_count(),
                elapsed > 0 ? static_cast<double>(writes) / elapsed : 0.0,
                static_cast<unsigned long long>(mismatches),
                static_cast<unsigned long long>(m.map_epoch));
    std::printf("router: span_splits=%llu wrong_pg_retries=%llu "
                "unavailable_retries=%llu map_refreshes=%llu\n",
                static_cast<unsigned long long>(m.span_splits),
                static_cast<unsigned long long>(m.wrong_pg_retries),
                static_cast<unsigned long long>(m.unavailable_retries),
                static_cast<unsigned long long>(m.map_refreshes));
  }
  if (options.get_u64("stats", 0) != 0) {
    const auto per_pg = router.pg_op_counts();
    for (std::size_t pg = 0; pg < per_pg.size(); ++pg) {
      if (per_pg[pg] == 0) continue;
      std::printf("pg %4zu -> %-8s ops=%llu\n", pg,
                  map->assignment(static_cast<cluster::PgId>(pg))
                      .primary.c_str(),
                  static_cast<unsigned long long>(per_pg[pg]));
    }
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  set_log_level(LogLevel::kInfo);
  const std::string command = argv[1];
  const Options options = parse_options(argc, argv, 2);
  if (command == "replica") return run_replica(options);
  if (command == "target") return run_target(options);
  if (command == "promote") return run_promote(options);
  if (command == "scrub") return run_scrub(options);
  if (command == "discover") return run_discover(options);
  if (command == "cluster" && argc >= 3) {
    const std::string sub = argv[2];
    const Options cluster_options = parse_options(argc, argv, 3);
    if (sub == "serve") return run_cluster_serve(cluster_options);
    if (sub == "route") return run_cluster_route(cluster_options);
  }
  return usage();
}
