// prinsctl — run PRINS nodes from the command line.
//
// A minimal operational wrapper over the library, enough to stand up the
// paper's testbed on real machines:
//
//   # on the replica host
//   prinsctl replica --file replica.img --blocks 65536 --bs 8192 --port 3261
//
//   # on the storage host (serves iSCSI to applications, replicates out)
//   prinsctl target --file primary.img --blocks 65536 --bs 8192
//                   --port 3260 --replica 10.0.0.2:3261 [--policy prins]
//
//   # anywhere: list targets a portal exposes
//   prinsctl discover --host 10.0.0.1 --port 3260
//
// Both server modes run until the process is interrupted.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "block/file_disk.h"
#include "common/logging.h"
#include "iscsi/initiator.h"
#include "iscsi/target.h"
#include "net/tcp.h"
#include "prins/engine.h"
#include "prins/replica.h"

namespace {

using namespace prins;

struct Options {
  std::map<std::string, std::string> values;

  const char* get(const std::string& key, const char* fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second.c_str();
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback
                              : std::strtoull(it->second.c_str(), nullptr, 10);
  }
};

Options parse_options(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i + 1 < argc; i += 2) {
    const char* key = argv[i];
    if (std::strncmp(key, "--", 2) == 0) {
      options.values[key + 2] = argv[i + 1];
    }
  }
  return options;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  prinsctl replica  --file PATH --blocks N --bs BYTES "
               "--port P [--trap 1]\n"
               "  prinsctl target   --file PATH --blocks N --bs BYTES "
               "--port P [--replica HOST:PORT] [--policy "
               "traditional|compressed|prins]\n"
               "  prinsctl discover --host H --port P\n");
  return 2;
}

ReplicationPolicy parse_policy(const std::string& name) {
  if (name == "traditional") return ReplicationPolicy::kTraditional;
  if (name == "compressed") return ReplicationPolicy::kTraditionalCompressed;
  return ReplicationPolicy::kPrins;
}

int run_replica(const Options& options) {
  auto disk = FileDisk::open(options.get("file", "replica.img"),
                             options.get_u64("blocks", 4096),
                             static_cast<std::uint32_t>(
                                 options.get_u64("bs", 8192)));
  if (!disk.is_ok()) {
    std::fprintf(stderr, "open backing file: %s\n",
                 disk.status().to_string().c_str());
    return 1;
  }
  ReplicaConfig config;
  config.keep_trap_log = options.get_u64("trap", 0) != 0;
  auto replica = std::make_shared<ReplicaEngine>(
      std::shared_ptr<BlockDevice>(std::move(*disk)), config);
  auto listener = TcpListener::listen(
      static_cast<std::uint16_t>(options.get_u64("port", 3261)));
  if (!listener.is_ok()) {
    std::fprintf(stderr, "listen: %s\n", listener.status().to_string().c_str());
    return 1;
  }
  std::printf("replica node on port %u (device %s, TRAP log %s)\n",
              (*listener)->port(), options.get("file", "replica.img"),
              config.keep_trap_log ? "on" : "off");
  std::thread server = replica_serve_in_background(
      replica, std::shared_ptr<TcpListener>(std::move(*listener)));
  server.join();  // serves until the process is killed
  return 0;
}

int run_target(const Options& options) {
  auto disk = FileDisk::open(options.get("file", "primary.img"),
                             options.get_u64("blocks", 4096),
                             static_cast<std::uint32_t>(
                                 options.get_u64("bs", 8192)));
  if (!disk.is_ok()) {
    std::fprintf(stderr, "open backing file: %s\n",
                 disk.status().to_string().c_str());
    return 1;
  }

  EngineConfig engine_config;
  engine_config.policy = parse_policy(options.get("policy", "prins"));
  auto engine = std::make_shared<PrinsEngine>(
      std::shared_ptr<BlockDevice>(std::move(*disk)), engine_config);

  const std::string replica_spec = options.get("replica", "");
  if (!replica_spec.empty()) {
    const auto colon = replica_spec.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--replica expects HOST:PORT\n");
      return 2;
    }
    const std::string host = replica_spec.substr(0, colon);
    const auto port = static_cast<std::uint16_t>(
        std::strtoul(replica_spec.c_str() + colon + 1, nullptr, 10));
    auto link = TcpTransport::connect(host, port);
    if (!link.is_ok()) {
      std::fprintf(stderr, "connect to replica %s: %s\n",
                   replica_spec.c_str(), link.status().to_string().c_str());
      return 1;
    }
    engine->add_replica(std::move(*link));
    std::printf("replicating to %s with policy %s\n", replica_spec.c_str(),
                std::string(policy_name(engine_config.policy)).c_str());
  }

  auto target = std::make_shared<iscsi::IscsiTarget>(engine);
  auto listener = TcpListener::listen(
      static_cast<std::uint16_t>(options.get_u64("port", 3260)));
  if (!listener.is_ok()) {
    std::fprintf(stderr, "listen: %s\n", listener.status().to_string().c_str());
    return 1;
  }
  std::printf("iSCSI target on port %u (device %s)\n", (*listener)->port(),
              options.get("file", "primary.img"));
  std::thread server = iscsi::serve_in_background(
      target, std::shared_ptr<TcpListener>(std::move(*listener)));
  server.join();
  return 0;
}

int run_discover(const Options& options) {
  auto transport = TcpTransport::connect(
      options.get("host", "127.0.0.1"),
      static_cast<std::uint16_t>(options.get_u64("port", 3260)));
  if (!transport.is_ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 transport.status().to_string().c_str());
    return 1;
  }
  auto targets = iscsi::discover_targets(std::move(*transport));
  if (!targets.is_ok()) {
    std::fprintf(stderr, "discovery failed: %s\n",
                 targets.status().to_string().c_str());
    return 1;
  }
  for (const std::string& name : *targets) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  set_log_level(LogLevel::kInfo);
  const std::string command = argv[1];
  const Options options = parse_options(argc, argv, 2);
  if (command == "replica") return run_replica(options);
  if (command == "target") return run_target(options);
  if (command == "discover") return run_discover(options);
  return usage();
}
